"""Tests for conversion operators and conversion paths."""

import pytest

from repro.exceptions import PlatformError
from repro.rheem.conversion import CONVERSION_KINDS, ConversionStep, conversion_path
from repro.rheem.platforms import default_registry


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink", "postgres"))


class TestConversionStep:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PlatformError):
            ConversionStep("teleport", "spark")

    def test_known_kinds(self):
        for kind in CONVERSION_KINDS:
            ConversionStep(kind, "spark")


class TestConversionPath:
    def test_same_platform_needs_nothing(self, reg):
        assert conversion_path(reg["spark"], reg["spark"]) == ()

    def test_local_to_distributed(self, reg):
        steps = conversion_path(reg["java"], reg["spark"])
        assert [(s.kind, s.platform) for s in steps] == [("distribute", "spark")]

    def test_local_to_distributed_in_loop_broadcasts(self, reg):
        steps = conversion_path(reg["java"], reg["spark"], in_loop=True)
        assert [(s.kind, s.platform) for s in steps] == [("broadcast", "spark")]

    def test_distributed_to_local_collects(self, reg):
        steps = conversion_path(reg["spark"], reg["java"])
        assert [(s.kind, s.platform) for s in steps] == [("collect", "spark")]

    def test_distributed_to_distributed_goes_through_driver(self, reg):
        steps = conversion_path(reg["spark"], reg["flink"])
        assert [(s.kind, s.platform) for s in steps] == [
            ("collect", "spark"),
            ("distribute", "flink"),
        ]

    def test_database_to_local(self, reg):
        steps = conversion_path(reg["postgres"], reg["java"])
        assert [(s.kind, s.platform) for s in steps] == [("db_export", "postgres")]

    def test_database_to_distributed(self, reg):
        steps = conversion_path(reg["postgres"], reg["spark"])
        assert [(s.kind, s.platform) for s in steps] == [
            ("db_export", "postgres"),
            ("distribute", "spark"),
        ]

    def test_local_to_database(self, reg):
        steps = conversion_path(reg["java"], reg["postgres"])
        assert [(s.kind, s.platform) for s in steps] == [("db_import", "postgres")]

    def test_distributed_to_database(self, reg):
        steps = conversion_path(reg["flink"], reg["postgres"])
        assert [(s.kind, s.platform) for s in steps] == [
            ("collect", "flink"),
            ("db_import", "postgres"),
        ]

    def test_every_pair_has_a_path(self, reg):
        for a in reg:
            for b in reg:
                steps = conversion_path(a, b)
                if a.name == b.name:
                    assert steps == ()
                else:
                    assert len(steps) >= 1
                    for s in steps:
                        assert s.platform in (a.name, b.name)
