"""The resilience subsystem: budgets, anytime degradation, fallback chain.

Three guarantees this suite pins down:

* **Anytime validity.** Whatever the budget, ``Robopt.optimize`` returns
  a *complete, executable* plan — every operator assigned to a platform
  that supports it (``ExecutionPlan`` construction enforces both) — and
  honestly reports degradation via ``RunStats.degraded``/``degradation``.
  Property-tested over seeded random TDGEN plans of every generator
  shape.

* **Fallback, not failure.** A primary model that raises, NaNs, loads
  badly or answers with the wrong shape degrades prediction fidelity
  level by level (ML model → calibrated cost model → cardinality
  heuristic); enumeration never aborts. Repeated failures trip the
  circuit breaker (closed → open → half-open → closed), short-circuiting
  a dead model off the hot path.

* **Corrupt state is not fatal.** A truncated/garbled plan-cache file —
  the crash-during-write artifact — loads as an *empty* cache instead of
  raising out of service construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunStats
from repro.core.features import FeatureSchema
from repro.core.optimizer import Robopt
from repro.cost.cost_model import FeatureCostModel
from repro.exceptions import BudgetExceededError, ModelError, ReproError
from repro.obs import Tracer, use_tracer
from repro.resilience.budget import (
    REASON_DEADLINE,
    REASON_MAX_VECTORS,
    Budget,
)
from repro.resilience.fallback import (
    CardinalityHeuristicModel,
    CircuitBreaker,
    FallbackRuntimeModel,
    VarianceGuard,
)
from repro.resilience.retry import Quarantine, RetryPolicy
from repro.rheem.platforms import synthetic_registry
from repro.serve import PlanCache
from repro.serve.testing import LinearRuntimeModel
from repro.tdgen.jobgen import JobGenerator

from conftest import build_join_plan, build_pipeline

N_PLATFORMS = 2
SHAPES = ("pipeline", "juncture", "replicate", "loop")


def _registry():
    return synthetic_registry(N_PLATFORMS)


def _random_plans(count, seed=1234, max_operators=9, min_operators=6):
    """Seeded random TDGEN plans, cycling generator shapes and sizes."""
    registry = _registry()
    gen = JobGenerator(registry, seed=seed)
    per_shape = -(-count // len(SHAPES))  # ceil
    templates = []
    for shape in SHAPES:
        templates.extend(
            gen.templates_for_shapes(
                (shape,),
                max_operators=max_operators,
                count=per_shape,
                min_operators=min_operators,
            )
        )
    plans = []
    for index, template in enumerate(templates[:count]):
        plans.append(template(10.0 ** (3 + index % 4)))
    return plans


def _robopt(seed=0, budget=None):
    registry = _registry()
    schema = FeatureSchema(registry)
    model = LinearRuntimeModel(schema.n_features, seed=seed)
    return Robopt(registry, model, schema=schema, budget=budget)


# ---------------------------------------------------------------------------
# Budget / BudgetClock
# ---------------------------------------------------------------------------


class FakeClock:
    """A manually-advanced clock for deterministic deadline tests."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestBudget:
    def test_validation(self):
        with pytest.raises(ReproError):
            Budget(deadline_s=-1.0)
        with pytest.raises(ReproError):
            Budget(max_vectors=-1)

    def test_unbounded(self):
        assert Budget().unbounded
        assert not Budget(deadline_s=1.0).unbounded
        assert not Budget(max_vectors=10).unbounded

    def test_clock_checks_deadline_first(self):
        clock = FakeClock()
        ticking = Budget(deadline_s=1.0, max_vectors=10).start(clock=clock)
        assert ticking.check(vectors=0) is None
        # Over the vector cap only.
        assert ticking.check(vectors=11) == REASON_MAX_VECTORS
        # Over both: the deadline wins.
        clock.advance(2.0)
        assert ticking.check(vectors=11) == REASON_DEADLINE
        assert ticking.check(vectors=0) == REASON_DEADLINE

    def test_ensure_raises_with_reason(self):
        clock = FakeClock()
        ticking = Budget(deadline_s=0.5).start(clock=clock)
        ticking.ensure()  # still in budget
        clock.advance(1.0)
        with pytest.raises(BudgetExceededError) as err:
            ticking.ensure()
        assert err.value.reason == REASON_DEADLINE

    def test_remaining_and_elapsed(self):
        clock = FakeClock(now=5.0)
        ticking = Budget(deadline_s=2.0).start(clock=clock)
        clock.advance(0.5)
        assert ticking.elapsed_s() == pytest.approx(0.5)
        assert ticking.remaining_s() == pytest.approx(1.5)
        assert Budget(max_vectors=3).start(clock=clock).remaining_s() is None


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_full_lifecycle(self):
        """closed --failures--> open --cooldown--> half_open --success--> closed."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()

        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

        clock.advance(9.9)
        assert breaker.state == "open"  # cooldown not yet over
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.allow()  # one probe allowed through

        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "half_open"
        breaker.record_failure()  # the probe fails
        assert breaker.state == "open"
        # ... and the cooldown restarts from the re-opening.
        clock.advance(4.0)
        assert breaker.state == "open"
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never 2 *consecutive* failures

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(cooldown_s=-1.0)


# ---------------------------------------------------------------------------
# Fallback chain
# ---------------------------------------------------------------------------


class AlwaysFailsModel:
    def predict(self, X):
        raise RuntimeError("model backend unavailable")


class NaNModel:
    def predict(self, X):
        return np.full(np.asarray(X).shape[0], np.nan)


class WrongShapeModel:
    def predict(self, X):
        return np.zeros(np.asarray(X).shape[0] + 3)


class TestCardinalityHeuristic:
    def test_always_finite_and_nonnegative(self):
        schema = FeatureSchema(_registry())
        heuristic = CardinalityHeuristicModel(schema)
        X = np.full((4, schema.n_features), np.nan)
        X[1] = np.inf
        X[2] = -np.inf
        out = heuristic.predict(X)
        assert out.shape == (4,)
        assert np.all(np.isfinite(out)) and np.all(out >= 0)

    def test_tolerates_width_mismatch(self):
        schema = FeatureSchema(_registry())
        heuristic = CardinalityHeuristicModel(schema)
        wide = np.ones((2, schema.n_features + 7))
        narrow = np.ones((2, max(1, schema.n_features - 5)))
        assert np.all(np.isfinite(heuristic.predict(wide)))
        assert np.all(np.isfinite(heuristic.predict(narrow)))

    def test_more_data_costs_more(self):
        schema = FeatureSchema(_registry())
        heuristic = CardinalityHeuristicModel(schema)
        small = np.ones((1, schema.n_features))
        large = small * 1000.0
        assert heuristic.predict(large)[0] > heuristic.predict(small)[0]


class TestFallbackRuntimeModel:
    def _schema(self):
        return FeatureSchema(_registry())

    def test_healthy_primary_answers(self):
        schema = self._schema()
        primary = LinearRuntimeModel(schema.n_features, seed=0)
        chain = FallbackRuntimeModel.for_schema(primary, schema)
        X = np.ones((3, schema.n_features))
        out = chain.predict(X)
        assert np.allclose(out, primary.predict(X))
        assert chain.last_level == "primary"

    def test_raising_primary_degrades_to_cost_model(self):
        schema = self._schema()
        chain = FallbackRuntimeModel.for_schema(AlwaysFailsModel(), schema)
        X = np.ones((2, schema.n_features))
        out = chain.predict(X)
        assert np.allclose(out, FeatureCostModel(schema).predict(X))
        assert chain.last_level == "FeatureCostModel"
        assert "model backend unavailable" in chain.last_error

    @pytest.mark.parametrize("bad", [NaNModel(), WrongShapeModel()])
    def test_insane_outputs_count_as_failures(self, bad):
        schema = self._schema()
        chain = FallbackRuntimeModel.for_schema(bad, schema)
        out = chain.predict(np.ones((2, schema.n_features)))
        assert np.all(np.isfinite(out))
        assert chain.last_level != "primary"

    def test_width_mismatch_rejected_before_primary(self):
        schema = self._schema()
        primary = LinearRuntimeModel(schema.n_features, seed=0)
        chain = FallbackRuntimeModel.for_schema(primary, schema)
        out = chain.predict(np.ones((2, schema.n_features + 1)))
        # Only the heuristic tolerates the wrong width.
        assert chain.last_level == "CardinalityHeuristicModel"
        assert np.all(np.isfinite(out))

    def test_failing_loader_degrades_instead_of_raising(self, tmp_path):
        from repro.ml.model import RuntimeModel

        schema = self._schema()
        chain = FallbackRuntimeModel.for_schema(
            RuntimeModel.loader(str(tmp_path / "nope.pkl")), schema
        )
        out = chain.predict(np.ones((2, schema.n_features)))
        assert np.all(np.isfinite(out))
        assert chain.last_level == "FeatureCostModel"

    def test_breaker_short_circuits_dead_primary(self):
        schema = self._schema()
        calls = []

        class CountingFailer:
            def predict(self, X):
                calls.append(len(calls))
                raise RuntimeError("down")

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0, clock=clock)
        chain = FallbackRuntimeModel.for_schema(
            CountingFailer(), schema, breaker=breaker
        )
        X = np.ones((1, schema.n_features))
        chain.predict(X)
        chain.predict(X)
        assert breaker.state == "open"
        chain.predict(X)
        chain.predict(X)
        assert len(calls) == 2  # short-circuited: the primary stopped being hit
        # After the cooldown the half-open probe reaches the primary again.
        clock.advance(61.0)
        chain.predict(X)
        assert len(calls) == 3

    def test_every_level_failing_raises_model_error(self):
        chain = FallbackRuntimeModel(AlwaysFailsModel(), fallbacks=[NaNModel()])
        with pytest.raises(ModelError):
            chain.predict(np.ones((2, 4)))

    def test_level_counts_accumulate(self):
        schema = self._schema()
        chain = FallbackRuntimeModel.for_schema(AlwaysFailsModel(), schema)
        X = np.ones((1, schema.n_features))
        chain.predict(X)
        chain.predict(X)
        assert chain.level_counts.get("FeatureCostModel") == 2

    def test_invalid_primary_rejected(self):
        with pytest.raises(ModelError):
            FallbackRuntimeModel(object())


# ---------------------------------------------------------------------------
# Variance guard: sustained disagreement is a soft failure
# ---------------------------------------------------------------------------


class SpreadModel:
    """predict/predict_dist double with a controllable relative spread."""

    def __init__(self, n_features, rel=2.0, mean=10.0):
        self.n_features = n_features
        self.rel = rel
        self.mean = mean

    def predict(self, X):
        return np.full(np.asarray(X).shape[0], self.mean)

    def predict_dist(self, X):
        out = self.predict(X)
        return out, np.abs(out) * self.rel


class TestVarianceGuard:
    def test_validation(self):
        with pytest.raises(ReproError):
            VarianceGuard(threshold=0.0)
        with pytest.raises(ReproError):
            VarianceGuard(window=0)
        with pytest.raises(ReproError):
            VarianceGuard(window=4, trip_count=5)

    def test_flags_relative_spread(self):
        guard = VarianceGuard(threshold=0.5, window=4)
        mean = np.array([10.0, 20.0])
        assert guard.observe(mean, mean * 0.1) is False
        assert guard.observe(mean, mean * 0.9) is True
        assert guard.high_calls == 1

    def test_floor_mutes_subsecond_plans(self):
        """Near-zero predictions must not inflate the ratio: their spread
        is not a model-health signal."""
        guard = VarianceGuard(threshold=0.5, window=2, floor_s=1e-3)
        tiny_mean = np.array([1e-9])
        tiny_std = np.array([1e-7])  # 100x the mean, but absolute noise
        assert guard.observe(tiny_mean, tiny_std) is False

    def test_trips_only_when_sustained(self):
        guard = VarianceGuard(threshold=0.5, window=3)
        mean = np.ones(2)
        guard.observe(mean, mean)  # high
        guard.observe(mean, mean)  # high
        assert not guard.tripped  # window not yet full
        guard.observe(mean, mean * 0.0)  # one calm batch
        assert not guard.tripped  # 2/3 flagged < trip_count=3
        guard.observe(mean, mean)
        guard.observe(mean, mean)
        guard.observe(mean, mean)
        assert guard.tripped  # the calm batch slid out
        guard.reset()
        assert not guard.tripped

    def test_partial_trip_count(self):
        guard = VarianceGuard(threshold=0.5, window=4, trip_count=2)
        mean = np.ones(1)
        guard.observe(mean, mean * 0.0)
        guard.observe(mean, mean)
        guard.observe(mean, mean * 0.0)
        guard.observe(mean, mean)
        assert guard.tripped  # 2/4 flagged >= trip_count=2

    def test_sustained_variance_degrades_to_cost_model(self):
        """A guessing primary is served from the fallback chain, counted
        as high_variance (not model_failure), and eventually breakered."""
        schema = FeatureSchema(_registry())
        guard = VarianceGuard(threshold=0.8, window=2)
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        chain = FallbackRuntimeModel.for_schema(
            SpreadModel(schema.n_features, rel=3.0),
            schema,
            breaker=breaker,
            variance_guard=guard,
        )
        X = np.ones((2, schema.n_features))
        tracer = Tracer()
        with use_tracer(tracer):
            assert chain.predict(X).shape == (2,)  # window filling: primary
            assert chain.last_level == "primary"
            chain.predict(X)  # window full -> tripped -> degraded
            assert chain.last_level == "FeatureCostModel"
            chain.predict(X)  # second trip opens the breaker
            chain.predict(X)  # short-circuited
        assert tracer.counters["resilience.high_variance"] == 2
        assert "resilience.model_failure" not in tracer.counters
        assert tracer.counters["resilience.breaker_open"] == 1
        assert tracer.counters["resilience.breaker_short_circuit"] == 1

    def test_calm_model_never_trips(self):
        schema = FeatureSchema(_registry())
        guard = VarianceGuard(threshold=0.8, window=2)
        chain = FallbackRuntimeModel.for_schema(
            SpreadModel(schema.n_features, rel=0.1),
            schema,
            variance_guard=guard,
        )
        X = np.ones((2, schema.n_features))
        for _ in range(6):
            chain.predict(X)
            assert chain.last_level == "primary"
        assert guard.high_calls == 0


# ---------------------------------------------------------------------------
# predict_dist honesty + hot model swap
# ---------------------------------------------------------------------------


class TestFallbackPredictDist:
    def _schema(self):
        return FeatureSchema(_registry())

    def test_primary_with_dist_reports_real_spread(self):
        schema = self._schema()
        chain = FallbackRuntimeModel.for_schema(
            SpreadModel(schema.n_features, rel=0.25), schema
        )
        mean, std = chain.predict_dist(np.ones((3, schema.n_features)))
        assert np.allclose(std, mean * 0.25)
        assert chain.last_level == "primary"

    def test_point_only_primary_reports_zero_spread(self):
        """A deterministic predictor has no spread; inventing one would
        poison risk-adjusted ranking."""
        schema = self._schema()
        primary = LinearRuntimeModel(schema.n_features, seed=0)
        chain = FallbackRuntimeModel.for_schema(primary, schema)
        X = np.ones((3, schema.n_features))
        mean, std = chain.predict_dist(X)
        assert np.array_equal(mean, primary.predict(X))
        assert np.array_equal(std, np.zeros(3))

    def test_fallback_served_reports_infinite_spread(self):
        """A degraded cost is an unbounded-uncertainty estimate: mean +
        k*inf makes any risk-averse consumer refuse to prefer it."""
        schema = self._schema()
        chain = FallbackRuntimeModel.for_schema(AlwaysFailsModel(), schema)
        tracer = Tracer()
        with use_tracer(tracer):
            mean, std = chain.predict_dist(np.ones((2, schema.n_features)))
        assert np.all(np.isfinite(mean))
        assert np.all(np.isinf(std))
        assert tracer.counters["resilience.fallback"] == 1


class TestSwapPrimary:
    def test_swap_revives_a_breakered_chain(self):
        schema = FeatureSchema(_registry())
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=3600.0)
        chain = FallbackRuntimeModel.for_schema(
            AlwaysFailsModel(), schema, breaker=breaker
        )
        X = np.ones((2, schema.n_features))
        chain.predict(X)
        assert breaker.state == "open"
        healthy = LinearRuntimeModel(schema.n_features, seed=0)
        chain.swap_primary(healthy)
        assert breaker.state == "closed"
        assert np.allclose(chain.predict(X), healthy.predict(X))
        assert chain.last_level == "primary"

    def test_swap_resets_variance_guard(self):
        schema = FeatureSchema(_registry())
        guard = VarianceGuard(threshold=0.5, window=1)
        chain = FallbackRuntimeModel.for_schema(
            SpreadModel(schema.n_features, rel=3.0),
            schema,
            variance_guard=guard,
        )
        X = np.ones((1, schema.n_features))
        chain.predict(X)
        assert guard.tripped
        chain.swap_primary(SpreadModel(schema.n_features, rel=0.1))
        assert not guard.tripped  # the fresh model starts clean
        chain.predict(X)
        assert chain.last_level == "primary"

    def test_swap_rejects_non_models(self):
        schema = FeatureSchema(_registry())
        chain = FallbackRuntimeModel.for_schema(
            LinearRuntimeModel(schema.n_features, seed=0), schema
        )
        with pytest.raises(ModelError):
            chain.swap_primary(object())


# ---------------------------------------------------------------------------
# Anytime optimization under budgets (property-tested over TDGEN plans)
# ---------------------------------------------------------------------------


def _assert_complete(result, plan):
    """The anytime contract: a complete, executable plan, honestly costed."""
    xplan = result.execution_plan
    assert set(xplan.assignment) == set(plan.operators)
    xplan.conversions()  # derivable without error
    for op_id, platform_name in xplan.assignment.items():
        platform = xplan.registry[platform_name]
        assert platform.supports(plan.operators[op_id].kind_name)


class TestAnytimeOptimization:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_zero_deadline_still_yields_executable_plans(self, seed):
        """deadline 0 degrades immediately — to the greedy single-platform
        plan, since not even singletons fit in the budget."""
        optimizer = _robopt(seed=seed, budget=Budget(deadline_s=0.0))
        for plan in _random_plans(8, seed=500 + seed):
            result = optimizer.optimize(plan)
            _assert_complete(result, plan)
            assert result.stats.degraded
            assert result.stats.degradation == "greedy_fallback"

    @pytest.mark.parametrize("seed", [5, 29])
    def test_vector_cap_yields_degraded_but_complete_plans(self, seed):
        """A cap that halts after singletons assembles the best per-fragment
        plan — complete, executable, flagged max_vectors."""
        optimizer = _robopt(seed=seed, budget=Budget(max_vectors=4))
        for plan in _random_plans(8, seed=900 + seed):
            result = optimizer.optimize(plan)
            _assert_complete(result, plan)
            assert result.stats.degraded
            assert result.stats.degradation in ("max_vectors", "greedy_fallback")

    def test_generous_budget_matches_unbounded_run(self):
        bounded = _robopt(seed=1, budget=Budget(deadline_s=300.0, max_vectors=10**9))
        unbounded = _robopt(seed=1)
        for plan in _random_plans(6, seed=777):
            a = bounded.optimize(plan)
            b = unbounded.optimize(plan)
            assert not a.stats.degraded and not b.stats.degraded
            assert a.execution_plan.assignment == b.execution_plan.assignment
            assert a.predicted_runtime == pytest.approx(b.predicted_runtime)

    def test_degraded_cost_never_beats_the_optimum(self):
        """Anytime assembly is lossy (cross-fragment conversions are never
        compared), so its predicted cost can only be >= the full search's."""
        capped = _robopt(seed=2, budget=Budget(max_vectors=4))
        full = _robopt(seed=2)
        checked = 0
        for plan in _random_plans(8, seed=1300):
            degraded = capped.optimize(plan)
            optimal = full.optimize(plan)
            if not degraded.stats.degraded:
                continue
            if np.isnan(degraded.predicted_runtime):
                continue
            checked += 1
            # Relative tolerance: the same plan costed through a different
            # summation path can differ in the last ulp.
            assert (
                degraded.predicted_runtime
                >= optimal.predicted_runtime * (1.0 - 1e-9)
            )
        assert checked > 0

    def test_per_call_budget_overrides_constructor(self):
        optimizer = _robopt(seed=4)
        plan = build_pipeline(4)
        normal = optimizer.optimize(plan)
        assert not normal.stats.degraded
        squeezed = optimizer.optimize(plan, budget=Budget(deadline_s=0.0))
        assert squeezed.stats.degraded
        _assert_complete(squeezed, plan)

    def test_degradation_counters(self):
        tracer = Tracer()
        optimizer = _robopt(seed=6, budget=Budget(deadline_s=0.0))
        with use_tracer(tracer):
            optimizer.optimize(build_join_plan())
        assert tracer.counters["resilience.degraded"] == 1
        assert tracer.counters["resilience.deadline_hit"] == 1

    def test_stats_roundtrip_degradation_fields(self):
        stats = RunStats()
        assert stats.degraded is False and stats.degradation == ""
        doc = _robopt(seed=8, budget=Budget(deadline_s=0.0)).optimize(
            build_pipeline(3)
        ).stats.as_dict()
        assert doc["degraded"] is True
        assert doc["degradation"] == "greedy_fallback"


# ---------------------------------------------------------------------------
# Retry policy and quarantine
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_and_jitter_bounded(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, multiplier=2.0, max_backoff_s=10.0, jitter=0.5, seed=7
        )
        again = RetryPolicy(
            base_backoff_s=0.1, multiplier=2.0, max_backoff_s=10.0, jitter=0.5, seed=7
        )
        for attempt in (1, 2, 3, 4):
            delay = policy.delay_s(attempt)
            base = 0.1 * 2.0 ** (attempt - 1)
            assert 0.5 * base <= delay <= 1.5 * base
            assert delay == again.delay_s(attempt)  # seeded, not sampled

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=4.0, max_backoff_s=5.0, jitter=0.0
        )
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 4.0
        assert policy.delay_s(3) == 5.0  # capped

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy().delay_s(0)


class TestQuarantine:
    def test_threshold_and_success_clearing(self):
        quarantine = Quarantine(threshold=2)
        assert quarantine.record_worker_death("fpA") == 1
        assert not quarantine.is_quarantined("fpA")
        # An innocent bystander of the same broken pool ...
        quarantine.record_worker_death("fpB")
        # ... completes on retry and is exonerated.
        quarantine.record_success("fpB")
        assert quarantine.deaths("fpB") == 0
        # The repeat offender crosses the threshold.
        quarantine.record_worker_death("fpA")
        assert quarantine.is_quarantined("fpA")
        assert len(quarantine) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            Quarantine(threshold=0)


# ---------------------------------------------------------------------------
# Corrupt plan-cache files (satellite: load tolerance)
# ---------------------------------------------------------------------------


class TestPlanCacheCorruptLoad:
    def _saved_cache(self, tmp_path, registry, n=3):
        from repro.core.optimizer import Robopt

        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=0)
        optimizer = Robopt(registry, model, schema=schema)
        cache = PlanCache()
        from repro.serve import plan_fingerprint

        for i in range(n):
            plan = build_pipeline(2 + i)
            cache.put(plan_fingerprint(plan, registry), optimizer.optimize(plan))
        path = tmp_path / "cache.json"
        cache.save(path)
        return path

    def test_truncated_file_loads_empty(self, tmp_path):
        registry = _registry()
        path = self._saved_cache(tmp_path, registry)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        tracer = Tracer()
        with use_tracer(tracer):
            cache = PlanCache.load(path, registry)
        assert len(cache) == 0
        assert tracer.counters["serve.cache.load_corrupt"] == 1

    @pytest.mark.parametrize(
        "content",
        ["", "not json at all {{{", '"a bare string"', "[1, 2, 3]", '{"entries": []}'],
    )
    def test_garbage_documents_load_empty(self, tmp_path, content):
        registry = _registry()
        path = tmp_path / "cache.json"
        path.write_text(content)
        assert len(PlanCache.load(path, registry)) == 0

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(PlanCache.load(tmp_path / "absent.json", _registry())) == 0

    def test_bad_entries_skipped_good_entries_kept(self, tmp_path):
        import json

        registry = _registry()
        path = self._saved_cache(tmp_path, registry, n=3)
        doc = json.loads(path.read_text())
        doc["entries"][1]["execution_plan"] = {"mangled": True}
        path.write_text(json.dumps(doc))
        cache = PlanCache.load(path, registry)
        assert len(cache) == 2

    def test_unsupported_version_still_raises(self, tmp_path):
        """An explicit future format version is a deployment error, not
        corruption — silently discarding it would mask the real problem."""
        import json

        registry = _registry()
        path = self._saved_cache(tmp_path, registry)
        doc = json.loads(path.read_text())
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            PlanCache.load(path, registry)
