"""Fine-grained tests of the simulator's cost mechanics.

These pin down the individual behaviours the reproduction's experiments
rely on: loop-state redistribution, sample amortization, the small-
conversion discount, and the detailed per-operator breakdown.
"""

import pytest

from repro.rheem.datasets import DatasetProfile, GB
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import default_registry
from repro.simulator.executor import (
    SAMPLE_RESHUFFLE_FIXED_S,
    SMALL_CONVERSION_CARD,
    STATE_RDD_FIXED_S,
    STATE_RDD_PER_ELEMENT_S,
    SimulatedExecutor,
)

from conftest import build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


@pytest.fixture
def executor(reg):
    return SimulatedExecutor.default(reg)


def loop_plan_with_state(state_card: float, iterations: int = 10) -> LogicalPlan:
    plan = LogicalPlan("state")
    src = plan.add(
        operator("TextFileSource"), dataset=DatasetProfile("d", 1e6, 100.0)
    )
    heavy = plan.add(operator("Map"))
    reduce_op = plan.add(
        operator("ReduceBy", fixed_output_cardinality=state_card)
    )
    update = plan.add(operator("Map"))
    sink = plan.add(operator("CollectionSink"))
    plan.chain(src, heavy, reduce_op, update, sink)
    plan.add_loop([heavy, reduce_op, update], iterations=iterations)
    plan.validate()
    return plan


class TestLoopState:
    def test_small_state_rdd_cost_scales_with_cardinality(self, executor, reg):
        t_small = executor.execute(
            single_platform_plan(loop_plan_with_state(10), "spark", reg)
        ).breakdown["loops"]
        t_large = executor.execute(
            single_platform_plan(loop_plan_with_state(1500), "spark", reg)
        ).breakdown["loops"]
        expected_delta = 10 * (1500 - 10) * STATE_RDD_PER_ELEMENT_S
        assert t_large - t_small == pytest.approx(expected_delta, rel=1e-6)

    def test_huge_state_uses_shuffle_regime(self, executor, reg):
        # Above the small-state threshold the cost switches to a shuffle,
        # which is far cheaper per element than the RDD rebroadcast.
        t = executor.execute(
            single_platform_plan(loop_plan_with_state(1e6), "spark", reg)
        ).breakdown["loops"]
        rdd_regime_estimate = 10 * (STATE_RDD_FIXED_S + 1e6 * STATE_RDD_PER_ELEMENT_S)
        assert t < rdd_regime_estimate / 10

    def test_local_state_broadcast_cheaper_than_distributed(self, executor, reg):
        plan = loop_plan_with_state(1000)
        all_spark = single_platform_plan(plan, "spark", reg)
        hybrid_assignment = dict(all_spark.assignment)
        hybrid_assignment[3] = "java"  # the state-producing Map
        hybrid = ExecutionPlan(plan, hybrid_assignment, reg)
        assert (
            executor.execute(hybrid).breakdown["loops"]
            < executor.execute(all_spark).breakdown["loops"]
        )

    def test_loop_overhead_charged_per_platform_in_body(self, executor, reg):
        plan = loop_plan_with_state(100, iterations=20)
        all_java = single_platform_plan(plan, "java", reg)
        loops_java = executor.execute(all_java).breakdown["loops"]
        all_flink = single_platform_plan(plan, "flink", reg)
        loops_flink = executor.execute(all_flink).breakdown["loops"]
        assert loops_java < loops_flink


class TestSampleMechanics:
    def sgd_like(self, cache_platform, sample_platform, reg, iterations=50):
        from repro.workloads import sgd

        plan = sgd.plan(2 * GB, iterations=iterations)
        ids = {op.label: op.id for op in plan.operators.values()}
        assignment = {i: sample_platform for i in plan.operators}
        assignment[ids["Cache(points)"]] = cache_platform
        return plan, ExecutionPlan(plan, assignment, reg)

    def test_state_loss_scales_with_iterations(self, executor, reg):
        _, few = self.sgd_like("spark", "spark", reg, iterations=10)
        _, many = self.sgd_like("spark", "spark", reg, iterations=200)
        delta = (
            executor.execute(many).runtime_s - executor.execute(few).runtime_s
        )
        # Each extra iteration pays at least the reshuffle fixed cost.
        assert delta > 190 * SAMPLE_RESHUFFLE_FIXED_S

    def test_moving_cache_away_restores_amortization(self, executor, reg):
        _, lost = self.sgd_like("spark", "spark", reg, iterations=200)
        _, kept = self.sgd_like("flink", "spark", reg, iterations=200)
        assert executor.execute(kept).runtime_s < executor.execute(lost).runtime_s

    def test_plain_sample_scans_every_iteration(self, executor, reg):
        plan = LogicalPlan("sample")
        src = plan.add(
            operator("TextFileSource"), dataset=DatasetProfile("d", 1e7, 100.0)
        )
        sample = plan.add(operator("Sample", fixed_output_cardinality=100))
        out = plan.add(operator("Map"))
        sink = plan.add(operator("CollectionSink"))
        plan.chain(src, sample, out, sink)
        plan.add_loop([sample, out], iterations=20)
        plan.validate()
        t20 = executor.execute(single_platform_plan(plan, "java", reg)).runtime_s
        plan2 = plan.clone()
        plan2.loops[0] = type(plan2.loops[0])(plan2.loops[0].body, 40)
        t40 = executor.execute(single_platform_plan(plan2, "java", reg)).runtime_s
        # Doubling iterations roughly doubles the sampling work.
        assert t40 > 1.6 * t20


class TestConversionMechanics:
    def test_small_conversion_discount(self, executor, reg):
        def plan_with_edge_card(card):
            plan = LogicalPlan("conv")
            src = plan.add(
                operator("TextFileSource"),
                dataset=DatasetProfile("d", card, 100.0),
            )
            mid = plan.add(operator("Map"))
            sink = plan.add(operator("CollectionSink"))
            plan.chain(src, mid, sink)
            return ExecutionPlan(
                plan, {src.id: "spark", mid.id: "spark", sink.id: "java"}, reg
            )

        small = executor.execute(
            plan_with_edge_card(SMALL_CONVERSION_CARD / 2)
        ).breakdown["conversions"]
        large = executor.execute(
            plan_with_edge_card(SMALL_CONVERSION_CARD * 2)
        ).breakdown["conversions"]
        assert small < large
        assert small < 0.45  # the discounted fixed cost

    def test_loop_conversions_multiply(self, executor, reg):
        plan = build_loop_plan(iterations=30)
        body = sorted(plan.loops[0].body)
        assignment = {i: "spark" for i in plan.operators}
        assignment[body[-1]] = "java"
        t30 = executor.execute(ExecutionPlan(plan, assignment, reg)).breakdown[
            "conversions"
        ]
        plan2 = build_loop_plan(iterations=3)
        t3 = executor.execute(ExecutionPlan(plan2, assignment, reg)).breakdown[
            "conversions"
        ]
        assert t30 > 3 * t3


class TestDetailedBreakdown:
    def test_per_operator_breakdown(self, executor, reg):
        plan = build_pipeline(3)
        xp = single_platform_plan(plan, "flink", reg)
        report = executor.execute(xp, detailed=True)
        per_op = report.breakdown["per_operator"]
        assert set(per_op) == set(plan.operators)
        assert sum(per_op.values()) == pytest.approx(
            report.breakdown["operators"]
        )

    def test_breakdown_omitted_by_default(self, executor, reg):
        plan = build_pipeline(3)
        report = executor.execute(single_platform_plan(plan, "flink", reg))
        assert "per_operator" not in report.breakdown
