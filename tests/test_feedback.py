"""Tests for the execution-feedback loop."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.feedback import FeedbackLoop
from repro.ml.model import TrainingDataset
from repro.rheem.execution_plan import single_platform_plan

from conftest import build_pipeline


@pytest.fixture
def setup(tiny_context):
    ctx = tiny_context
    loop = FeedbackLoop(
        ctx["schema"],
        base_dataset=ctx["dataset"],
        algorithm="random_forest",
        n_estimators=10,
        max_depth=12,
    )
    return ctx, loop


class TestObservation:
    def test_observe_accumulates(self, setup):
        ctx, loop = setup
        plan = build_pipeline(3)
        xp = single_platform_plan(plan, "spark", ctx["registry"])
        loop.observe(xp, 12.5)
        loop.observe(xp, 13.0)
        assert loop.n_observations == 2
        assert loop.observations_since_retrain == 2
        ds = loop.observations_dataset()
        assert len(ds) == 2
        assert ds.y.tolist() == [12.5, 13.0]
        assert all(m["source"] == "observation" for m in ds.meta)

    def test_invalid_runtime_rejected(self, setup):
        """Bad measurements are dropped (with counters), not raised:
        a crashed execution must never kill the serving loop that
        reported it."""
        from repro.obs import Tracer, use_tracer

        ctx, loop = setup
        xp = single_platform_plan(build_pipeline(2), "java", ctx["registry"])
        tracer = Tracer()
        with use_tracer(tracer):
            assert loop.observe(xp, -1.0) is False
            assert loop.observe(xp, float("inf")) is False
            assert loop.observe(xp, float("nan")) is False
        assert loop.n_observations == 0
        assert loop.rejected == 3
        assert tracer.counters["ml.feedback.rejected"] == 3
        assert tracer.counters["ml.feedback.rejected.nonfinite"] == 3

    def test_degraded_plan_rejected(self, setup):
        """A fallback-served plan's runtime is not a label: learning from
        it would teach the model what the *fallback's* picks cost."""
        from repro.api import RunStats
        from repro.obs import Tracer, use_tracer

        ctx, loop = setup
        xp = single_platform_plan(build_pipeline(2), "java", ctx["registry"])
        degraded = RunStats(degraded=True, degradation="cost_model")
        tracer = Tracer()
        with use_tracer(tracer):
            assert loop.observe(xp, 5.0, stats=degraded) is False
            assert loop.observe(xp, 5.0, stats=RunStats()) is True
        assert loop.n_observations == 1
        assert tracer.counters["ml.feedback.rejected.degraded"] == 1
        assert tracer.counters["ml.feedback.accepted"] == 1

    def test_schema_mismatch_rejected(self, setup):
        ctx, _ = setup
        bad = TrainingDataset(np.zeros((10, 3)), np.zeros(10))
        with pytest.raises(ModelError):
            FeedbackLoop(ctx["schema"], base_dataset=bad)

    def test_invalid_weight_rejected(self, setup):
        ctx, _ = setup
        with pytest.raises(ModelError):
            FeedbackLoop(
                ctx["schema"], base_dataset=ctx["dataset"], observation_weight=0
            )


class TestRetraining:
    def test_weighted_training_dataset(self, setup):
        ctx, loop = setup
        xp = single_platform_plan(build_pipeline(3), "flink", ctx["registry"])
        loop.observe(xp, 30.0)
        combined = loop.training_dataset()
        assert len(combined) == len(ctx["dataset"]) + loop.observation_weight

    def test_retrain_resets_counter_and_counts(self, setup):
        ctx, loop = setup
        xp = single_platform_plan(build_pipeline(3), "flink", ctx["registry"])
        loop.observe(xp, 30.0)
        model = loop.retrain()
        assert loop.observations_since_retrain == 0
        assert loop.n_retrains == 1
        assert model.predict(ctx["dataset"].X[:4]).shape == (4,)

    def test_feedback_corrects_a_misprediction(self, setup):
        """Repeated observations of a surprising runtime pull the model's
        prediction toward the observed value."""
        ctx, loop = setup
        plan = build_pipeline(4, cardinality=3e6)
        xp = single_platform_plan(plan, "spark", ctx["registry"])
        vector = ctx["schema"].encode_execution_plan(xp)
        before_model = loop.retrain()
        before = before_model.predict_one(vector)
        surprise = before * 6 + 10.0  # pretend the cluster is degraded
        for _ in range(30):
            loop.observe(xp, surprise)
        after = loop.retrain().predict_one(vector)
        assert abs(after - surprise) < abs(before - surprise)
