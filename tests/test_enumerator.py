"""Tests for the priority-based enumerator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.enumerator import PriorityEnumerator
from repro.core.features import FeatureSchema
from repro.exceptions import EnumerationError
from repro.rheem.platforms import synthetic_registry

from conftest import (
    build_join_plan,
    build_loop_plan,
    build_pipeline,
    make_linear_cost,
)


def run_both(plan, k=2, seed=0, priority="robopt"):
    reg = synthetic_registry(k)
    schema = FeatureSchema(reg)
    cost = make_linear_cost(schema, seed=seed)
    pruned = PriorityEnumerator(reg, cost, priority=priority, schema=schema).enumerate_plan(plan)
    exhaustive = PriorityEnumerator(
        reg, cost, pruning=False, schema=schema
    ).enumerate_plan(plan)
    return pruned, exhaustive


class TestOptimality:
    @pytest.mark.parametrize("n_middle", [1, 2, 4])
    @pytest.mark.parametrize("k", [2, 3])
    def test_lossless_on_pipelines(self, n_middle, k):
        pruned, exhaustive = run_both(build_pipeline(n_middle), k=k, seed=n_middle)
        assert pruned.predicted_cost == pytest.approx(exhaustive.predicted_cost)
        assert pruned.execution_plan == exhaustive.execution_plan

    def test_lossless_on_join_plan(self):
        pruned, exhaustive = run_both(build_join_plan(), k=3, seed=1)
        assert pruned.predicted_cost == pytest.approx(exhaustive.predicted_cost)

    def test_lossless_on_loop_plan(self):
        pruned, exhaustive = run_both(build_loop_plan(), k=3, seed=2)
        assert pruned.predicted_cost == pytest.approx(exhaustive.predicted_cost)

    @pytest.mark.parametrize("priority", ["robopt", "topdown", "bottomup"])
    def test_all_priorities_reach_the_optimum(self, priority):
        pruned, exhaustive = run_both(build_join_plan(), k=2, seed=3, priority=priority)
        assert pruned.predicted_cost == pytest.approx(exhaustive.predicted_cost)


class TestSearchSpace:
    def test_exhaustive_final_size_is_k_to_n(self):
        plan = build_pipeline(2)
        _, exhaustive = run_both(plan, k=3)
        assert exhaustive.stats.final_vectors == 3 ** plan.n_operators

    def test_pruning_reduces_created_vectors(self):
        plan = build_pipeline(5)
        pruned, exhaustive = run_both(plan, k=3)
        assert pruned.stats.vectors_created < exhaustive.stats.vectors_created
        assert pruned.stats.vectors_pruned > 0

    def test_pipeline_enumerations_stay_quadratic(self):
        """Lemma 1: every pruned enumeration of a pipeline has <= k^2 vectors."""
        reg = synthetic_registry(3)
        schema = FeatureSchema(reg)
        cost = make_linear_cost(schema)
        enum = PriorityEnumerator(reg, cost, schema=schema)
        result = enum.enumerate_plan(build_pipeline(8))
        assert result.stats.peak_enumeration <= 3 ** 2 * 3 ** 2
        assert result.stats.final_vectors <= 3 ** 2

    def test_max_vectors_guard(self):
        reg = synthetic_registry(3)
        schema = FeatureSchema(reg)
        cost = make_linear_cost(schema)
        enum = PriorityEnumerator(
            reg, cost, pruning=False, schema=schema, max_vectors=100
        )
        with pytest.raises(EnumerationError):
            enum.enumerate_plan(build_pipeline(6))


class TestStats:
    def test_stats_are_consistent(self):
        pruned, _ = run_both(build_pipeline(4), k=2)
        s = pruned.stats
        assert s.merges == s.prune_calls
        assert s.singleton_vectors == 2 * 6  # 6 ops x 2 platforms
        assert s.final_vectors >= 1
        assert s.latency_s > 0
        assert s.rows_predicted >= s.vectors_created

    def test_total_vectors_property(self):
        pruned, _ = run_both(build_pipeline(3), k=2)
        s = pruned.stats
        assert s.total_vectors == s.singleton_vectors + s.vectors_created


class TestResultObject:
    def test_final_enumeration_is_complete(self):
        pruned, _ = run_both(build_pipeline(3), k=2)
        assert pruned.final_enumeration.is_complete

    def test_predicted_cost_matches_best_row(self):
        reg = synthetic_registry(2)
        schema = FeatureSchema(reg)
        cost = make_linear_cost(schema, seed=9)
        result = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(
            build_pipeline(3)
        )
        final_costs = cost(result.final_enumeration)
        assert result.predicted_cost == pytest.approx(final_costs.min())
