"""Tests for cardinality propagation."""

import pytest

from repro.exceptions import PlanError
from repro.rheem.cardinality import edge_cardinality, propagate_cardinalities
from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator

from conftest import build_join_plan, build_pipeline


class TestPropagation:
    def test_source_takes_dataset_cardinality(self):
        p = build_pipeline(2, cardinality=12345)
        cards = p.cardinalities()
        src = p.sources()[0]
        assert cards[src][0] == 12345

    def test_selectivity_applied_along_pipeline(self):
        p = LogicalPlan()
        s = p.add(operator("TextFileSource"), dataset=DatasetProfile("d", 1000, 10))
        f = p.add(operator("Filter", selectivity=0.5))
        g = p.add(operator("Filter", selectivity=0.2))
        k = p.add(operator("CollectionSink"))
        p.chain(s, f, g, k)
        cards = p.cardinalities()
        assert cards[f.id] == (1000, 500)
        assert cards[g.id] == (500, 100)
        assert cards[k.id] == (100, 0)

    def test_join_input_is_sum_output_is_scaled_max(self):
        p = build_join_plan(cardinality=1e6)
        join_id = next(i for i, op in p.operators.items() if op.kind_name == "Join")
        cards = p.cardinalities()
        parents = p.parents(join_id)
        parent_outs = [cards[q][1] for q in parents]
        assert cards[join_id][0] == pytest.approx(sum(parent_outs))
        join_op = p.operators[join_id]
        assert cards[join_id][1] == pytest.approx(
            join_op.selectivity * max(parent_outs)
        )

    def test_cartesian_output_is_product(self):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=DatasetProfile("a", 100, 10))
        b = p.add(operator("TextFileSource"), dataset=DatasetProfile("b", 200, 10))
        c = p.add(operator("Cartesian", selectivity=1.0))
        k = p.add(operator("CollectionSink"))
        p.connect(a, c)
        p.connect(b, c)
        p.connect(c, k)
        cards = p.cardinalities()
        assert cards[c.id][1] == pytest.approx(100 * 200)

    def test_fixed_output_cardinality(self):
        p = LogicalPlan()
        s = p.add(operator("TextFileSource"), dataset=DatasetProfile("d", 1e9, 10))
        r = p.add(operator("ReduceBy", fixed_output_cardinality=42))
        k = p.add(operator("CollectionSink"))
        p.chain(s, r, k)
        assert p.cardinalities()[r.id][1] == 42.0

    def test_replicate_sends_full_output_on_each_edge(self):
        p = LogicalPlan()
        s = p.add(operator("TextFileSource"), dataset=DatasetProfile("d", 1000, 10))
        m = p.add(operator("Map"))
        a = p.add(operator("Filter"))
        b = p.add(operator("Filter"))
        u = p.add(operator("Union"))
        k = p.add(operator("CollectionSink"))
        p.connect(s, m)
        p.connect(m, a)
        p.connect(m, b)
        p.connect(a, u)
        p.connect(b, u)
        p.connect(u, k)
        assert edge_cardinality(p, m.id, a.id) == 1000.0
        assert edge_cardinality(p, m.id, b.id) == 1000.0

    def test_cache_invalidation_on_dataset_change(self):
        p = build_pipeline(2, cardinality=1000)
        before = p.cardinalities()[0][0]
        src = p.sources()[0]
        p.set_dataset(src, DatasetProfile("d", 9999, 100))
        assert p.cardinalities()[0][0] != before

    def test_edge_cardinality_unknown_edge(self):
        p = build_pipeline(2)
        with pytest.raises(PlanError):
            edge_cardinality(p, 0, 99)

    def test_propagation_requires_datasets(self):
        p = LogicalPlan()
        s = p.add(operator("TextFileSource"), dataset=DatasetProfile("d", 10, 10))
        p.datasets.clear()
        k = p.add(operator("CollectionSink"))
        p.connect(s, k)
        with pytest.raises(PlanError):
            propagate_cardinalities(p)
