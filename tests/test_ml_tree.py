"""Tests for the decision-tree regressor."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFit:
    def test_fits_a_step_function_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(min_samples_leaf=1, min_samples_split=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 3.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_nodes == 1
        assert np.allclose(tree.predict(X), 3.5)

    def test_constant_features_single_leaf(self):
        X = np.ones((20, 3))
        y = np.arange(20, dtype=float)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_nodes == 1
        assert np.allclose(tree.predict(X), y.mean())

    def test_max_depth_respected(self, rng):
        X = rng.uniform(size=(300, 4))
        y = rng.uniform(size=300)
        tree = DecisionTreeRegressor(
            max_depth=3, min_samples_leaf=1, min_samples_split=2
        ).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(size=(100, 3))
        y = rng.uniform(size=100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        # Each leaf prediction is an average over >= 10 samples: check by
        # counting unique leaf values vs. an upper bound.
        assert tree.n_nodes <= 2 * (100 // 10) - 1

    def test_deeper_fits_are_at_least_as_good(self, rng):
        X = rng.uniform(size=(500, 3))
        y = X[:, 0] * 3 + np.sin(5 * X[:, 1])
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=10).fit(X, y)
        err_s = np.mean((shallow.predict(X) - y) ** 2)
        err_d = np.mean((deep.predict(X) - y) ** 2)
        assert err_d <= err_s

    def test_input_validation(self):
        tree = DecisionTreeRegressor()
        with pytest.raises(ModelError):
            tree.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ModelError):
            tree.fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))

    def test_bad_hyperparameters(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_features=0).fit(
                np.zeros((5, 2)), np.zeros(5)
            )


class TestPredict:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))

    def test_predict_wrong_width(self, rng):
        X = rng.uniform(size=(50, 3))
        tree = DecisionTreeRegressor().fit(X, X[:, 0])
        with pytest.raises(ModelError):
            tree.predict(np.zeros((2, 4)))

    def test_prediction_is_piecewise_constant(self, rng):
        X = rng.uniform(size=(200, 2))
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        preds = tree.predict(rng.uniform(size=(500, 2)))
        assert len(np.unique(preds)) <= 2 ** 4

    def test_max_features_sqrt(self, rng):
        X = rng.uniform(size=(100, 16))
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_features="sqrt", rng=rng).fit(X, y)
        assert tree.n_nodes >= 1
