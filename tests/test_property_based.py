"""Property-based tests (hypothesis) on the core invariants.

The invariants under test are the paper's formal claims:

* ``merge`` is commutative and associative (§IV-D);
* boundary pruning is lossless w.r.t. a decomposable cost model (Def. 2);
* a pruned pipeline enumeration never exceeds k² vectors (Lemma 1);
* merged plan vectors equal the direct encoding of the same execution
  plan (the vectorized enumeration computes *the* plan vector);
* the β-switch pruning bound holds for every surviving vector.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import EnumerationContext
from repro.core.enumerator import PriorityEnumerator
from repro.core.features import FeatureSchema
from repro.core.operations import (
    enumerate_abstract,
    enumerate_singleton,
    merge_enumerations,
    split,
    vectorize,
)
from repro.core.pruning import prune, prune_switches
from repro.ml.metrics import spearman
from repro.rheem.datasets import DatasetProfile
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import synthetic_registry
from repro.tdgen.loggen import interpolate_runtimes

# ---------------------------------------------------------------------------
# Plan strategies
# ---------------------------------------------------------------------------

_UNARY = ("Map", "Filter", "FlatMap", "ReduceBy", "Sort", "Distinct")


@st.composite
def pipeline_plans(draw, max_middle=5):
    """Random small pipelines with random kinds and selectivities."""
    n_middle = draw(st.integers(1, max_middle))
    cardinality = draw(st.floats(1e3, 1e8))
    plan = LogicalPlan("hyp")
    ops = [
        plan.add(
            operator("TextFileSource"),
            dataset=DatasetProfile("d", cardinality, 100.0),
        )
    ]
    for _ in range(n_middle):
        kind = draw(st.sampled_from(_UNARY))
        sel = draw(st.floats(0.05, 2.0))
        ops.append(plan.add(operator(kind, selectivity=sel)))
    ops.append(plan.add(operator("CollectionSink")))
    plan.chain(*ops)
    if draw(st.booleans()) and n_middle >= 2:
        body = [ops[1].id, ops[2].id]
        plan.add_loop(body, iterations=draw(st.integers(2, 50)))
    plan.validate()
    return plan


def linear_cost(schema, seed):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0, 1, schema.n_features)
    return lambda enum: enum.features @ weights


# ---------------------------------------------------------------------------
# Merge algebra
# ---------------------------------------------------------------------------


class TestMergeAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(plan=pipeline_plans(max_middle=3), k=st.integers(2, 3))
    def test_merge_commutative(self, plan, k):
        ctx = EnumerationContext(plan, synthetic_registry(k))
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        ab = merge_enumerations(parts[0], parts[1])
        ba = merge_enumerations(parts[1], parts[0])
        # Same multiset of (assignment, features) rows.
        order_ab = np.lexsort(ab.assignments.T)
        order_ba = np.lexsort(ba.assignments.T)
        assert np.array_equal(
            ab.assignments[order_ab], ba.assignments[order_ba]
        )
        assert np.allclose(ab.features[order_ab], ba.features[order_ba])

    @settings(max_examples=20, deadline=None)
    @given(plan=pipeline_plans(max_middle=3), k=st.integers(2, 3))
    def test_merge_associative(self, plan, k):
        ctx = EnumerationContext(plan, synthetic_registry(k))
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        left = merge_enumerations(merge_enumerations(parts[0], parts[1]), parts[2])
        right = merge_enumerations(parts[0], merge_enumerations(parts[1], parts[2]))
        order_l = np.lexsort(left.assignments.T)
        order_r = np.lexsort(right.assignments.T)
        assert np.array_equal(
            left.assignments[order_l], right.assignments[order_r]
        )
        assert np.allclose(left.features[order_l], right.features[order_r])

    @settings(max_examples=20, deadline=None)
    @given(plan=pipeline_plans(max_middle=4), k=st.integers(2, 3))
    def test_merged_vectors_equal_direct_encoding(self, plan, k):
        reg = synthetic_registry(k)
        ctx = EnumerationContext(plan, reg)
        enum = enumerate_abstract(vectorize(ctx))
        rows = np.linspace(0, enum.n_vectors - 1, min(6, enum.n_vectors)).astype(int)
        for row in rows:
            xp = ExecutionPlan(plan, enum.assignment_dict(int(row)), reg)
            direct = ctx.schema.encode_execution_plan(xp)
            assert np.allclose(direct, enum.features[int(row)])


# ---------------------------------------------------------------------------
# Pruning invariants
# ---------------------------------------------------------------------------


class TestPruningInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        plan=pipeline_plans(max_middle=4),
        k=st.integers(2, 3),
        seed=st.integers(0, 1000),
    )
    def test_boundary_pruning_lossless(self, plan, k, seed):
        """Def. 2: pruned optimum == exhaustive optimum for decomposable costs."""
        reg = synthetic_registry(k)
        schema = FeatureSchema(reg)
        cost = linear_cost(schema, seed)
        pruned = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(plan)
        full = PriorityEnumerator(
            reg, cost, pruning=False, schema=schema
        ).enumerate_plan(plan)
        assert pruned.predicted_cost == pytest.approx(full.predicted_cost)

    @settings(max_examples=20, deadline=None)
    @given(plan=pipeline_plans(max_middle=6), k=st.integers(2, 3), seed=st.integers(0, 50))
    def test_lemma_1_quadratic_enumerations(self, plan, k, seed):
        """Lemma 1: pruned pipeline enumerations hold at most k² vectors."""
        reg = synthetic_registry(k)
        schema = FeatureSchema(reg)
        cost = linear_cost(schema, seed)
        result = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(plan)
        assert result.stats.final_vectors <= k ** 2

    @settings(max_examples=15, deadline=None)
    @given(plan=pipeline_plans(max_middle=4), beta=st.integers(0, 3))
    def test_switch_pruning_bound(self, plan, beta):
        ctx = EnumerationContext(plan, synthetic_registry(2))
        enum = enumerate_abstract(vectorize(ctx))
        pruned = prune_switches(enum, beta=beta)
        assert pruned.n_vectors >= 1
        assert np.all(pruned.switch_counts() <= max(beta, enum.switch_counts().min()))

    @settings(max_examples=15, deadline=None)
    @given(plan=pipeline_plans(max_middle=3), seed=st.integers(0, 100))
    def test_prune_keeps_global_optimum_row(self, plan, seed):
        """The overall cheapest vector always survives boundary pruning."""
        ctx = EnumerationContext(plan, synthetic_registry(2))
        enum = enumerate_abstract(vectorize(ctx))
        cost = linear_cost(ctx.schema, seed)
        costs = cost(enum)
        pruned, _ = prune(enum, cost)
        assert cost(pruned).min() == pytest.approx(costs.min())


# ---------------------------------------------------------------------------
# Supporting numerics
# ---------------------------------------------------------------------------


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None)
    @given(plan=pipeline_plans(max_middle=5))
    def test_json_roundtrip_preserves_signature(self, plan):
        from repro.rheem.serialization import plan_from_json, plan_to_json

        restored = plan_from_json(plan_to_json(plan))
        assert restored.signature() == plan.signature()
        assert restored.cardinalities() == plan.cardinalities()

    @settings(max_examples=15, deadline=None)
    @given(plan=pipeline_plans(max_middle=3), k=st.integers(2, 3), row=st.integers(0, 10_000))
    def test_execution_plan_roundtrip(self, plan, k, row):
        from repro.rheem.serialization import (
            execution_plan_from_json,
            execution_plan_to_json,
        )

        reg = synthetic_registry(k)
        ctx = EnumerationContext(plan, reg)
        enum = enumerate_abstract(vectorize(ctx))
        xplan = ExecutionPlan(
            plan, enum.assignment_dict(row % enum.n_vectors), reg
        )
        restored = execution_plan_from_json(execution_plan_to_json(xplan), reg)
        assert restored == xplan


class TestChannelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        a=st.sampled_from(["java", "spark", "flink", "postgres"]),
        b=st.sampled_from(["java", "spark", "flink", "postgres"]),
        in_loop=st.booleans(),
    )
    def test_graph_paths_match_rule_table(self, a, b, in_loop):
        from repro.rheem.channels import conversion_path_via_graph
        from repro.rheem.conversion import conversion_path
        from repro.rheem.platforms import default_registry

        reg = default_registry(("java", "spark", "flink", "postgres"))
        expected = tuple(
            (s.kind, s.platform)
            for s in conversion_path(reg[a], reg[b], in_loop=in_loop)
        )
        assert conversion_path_via_graph(reg[a], reg[b], in_loop=in_loop) == expected


class TestNumericProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(1.0, 1e6), min_size=3, max_size=10, unique=True),
    )
    def test_interpolation_through_executed_points(self, cards):
        cards = np.sort(np.asarray(cards))
        runtimes = 0.5 + cards / 1e4
        predicted = interpolate_runtimes(cards, runtimes, cards)
        assert np.allclose(predicted, runtimes, rtol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=50, unique=True))
    def test_spearman_bounds_and_self_correlation(self, values):
        x = np.asarray(values)
        assert spearman(x, x) == pytest.approx(1.0)
        rng = np.random.default_rng(0)
        y = rng.normal(size=x.size)
        assert -1.0 - 1e-9 <= spearman(x, y) <= 1.0 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(plan=pipeline_plans(max_middle=4))
    def test_cardinalities_nonnegative_and_consistent(self, plan):
        cards = plan.cardinalities()
        for op_id, (in_card, out_card) in cards.items():
            assert in_card >= 0 and out_card >= 0
            parents = plan.parents(op_id)
            if parents:
                assert in_card == pytest.approx(
                    sum(cards[p][1] for p in parents)
                )
