"""Tests for the RHEEMix linear cost model."""

import numpy as np
import pytest

from repro.cost.cost_model import (
    INFEASIBLE_COST,
    CostModel,
    CostParameters,
)
from repro.rheem.conversion import CONVERSION_KINDS
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.platforms import default_registry

from conftest import build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


def simple_params(reg):
    params = CostParameters()
    for kind in ("TextFileSource", "Filter", "Map", "ReduceBy", "CollectionSink"):
        for p in reg.names:
            params.operator_coeffs[(kind, p)] = (0.1, 1e-7, 0.0)
    params.conversion_coeffs["collect"] = (0.5, 1e-6)
    params.conversion_coeffs["distribute"] = (0.5, 1e-6)
    params.startup = {"java": 0.0, "spark": 6.0, "flink": 4.5}
    return params


class TestCostEvaluation:
    def test_single_platform_cost_composition(self, reg):
        model = CostModel(reg, simple_params(reg))
        plan = build_pipeline(2)  # src, Filter, Map, sink
        cost = model.cost_of_plan(single_platform_plan(plan, "spark", reg))
        cards = plan.cardinalities()
        from repro.simulator.profiles import COMPLEXITY_WORK

        expected = 6.0  # startup
        for op_id, op in plan.operators.items():
            cx = COMPLEXITY_WORK[op.udf_complexity]
            expected += 0.1 + 1e-7 * cards[op_id][0] * cx
        assert cost == pytest.approx(expected)

    def test_conversions_add_cost(self, reg):
        model = CostModel(reg, simple_params(reg))
        plan = build_pipeline(2)
        same = model.cost_of_plan(single_platform_plan(plan, "spark", reg))
        mixed = model.cost_of_plan(
            ExecutionPlan(plan, {0: "spark", 1: "spark", 2: "java", 3: "java"}, reg)
        )
        # mixed saves no work here but pays a collect conversion; startup
        # is spark+java = spark-only since java startup is 0.
        assert mixed > same - 6.0

    def test_partial_scope_cost(self, reg):
        model = CostModel(reg, simple_params(reg))
        plan = build_pipeline(2)
        assignment = {i: "spark" for i in plan.operators}
        full = model.cost_of_assignment(plan, assignment)
        part = model.cost_of_assignment(plan, assignment, scope={0, 1})
        assert 0 < part < full

    def test_loop_blindness_of_fixed_costs(self, reg):
        """Fixed per-op costs are NOT iteration-scaled (the blind spot)."""
        model = CostModel(reg, simple_params(reg))
        short = build_loop_plan(iterations=1)
        long = build_loop_plan(iterations=1000)
        c_short = model.cost_of_plan(single_platform_plan(short, "spark", reg))
        c_long = model.cost_of_plan(single_platform_plan(long, "spark", reg))
        # variable part scales, but only mildly here (small cards), so the
        # iteration-scaled part must be the card terms only.
        from repro.simulator.profiles import COMPLEXITY_WORK

        cards = long.cardinalities()
        variable = sum(
            1e-7 * cards[i][0] * COMPLEXITY_WORK[long.operators[i].udf_complexity] * 999
            for i in long.loops[0].body
        )
        assert c_long - c_short == pytest.approx(variable)

    def test_memory_infeasibility(self, reg):
        model = CostModel(reg, simple_params(reg))
        plan = build_pipeline(2, cardinality=5e9)  # 500 GB
        cost = model.cost_of_plan(single_platform_plan(plan, "java", reg))
        assert cost == INFEASIBLE_COST
        assert model.cost_of_plan(single_platform_plan(plan, "spark", reg)) < np.inf

    def test_missing_coefficients_cost_zero(self, reg):
        model = CostModel(reg, CostParameters())
        plan = build_pipeline(2)
        assert model.cost_of_plan(single_platform_plan(plan, "spark", reg)) == 0.0

    def test_n_parameters(self, reg):
        params = simple_params(reg)
        assert params.n_parameters() == 3 * 15 + 2 * 2 + 3


class TestDesignDecomposition:
    def test_cost_equals_design_row_dot_coefficients(self, reg):
        """cost_of_plan and the calibration design must agree exactly."""
        plan = build_loop_plan(iterations=5)
        kinds = sorted({op.kind_name for op in plan.operators.values()})
        columns = CostModel.design_columns(kinds, reg.names, CONVERSION_KINDS)
        rng = np.random.default_rng(0)
        coefficients = rng.uniform(0, 1, len(columns))
        model = CostModel.from_coefficients(reg, columns, coefficients)
        for platform in reg.names:
            xp = single_platform_plan(plan, platform, reg)
            row = model.design_row(xp, columns)
            assert model.cost_of_plan(xp) == pytest.approx(row @ coefficients)

    def test_mixed_plan_design_includes_conversions(self, reg):
        plan = build_pipeline(2)
        kinds = sorted({op.kind_name for op in plan.operators.values()})
        columns = CostModel.design_columns(kinds, reg.names, CONVERSION_KINDS)
        model = CostModel(reg, CostParameters())
        xp = ExecutionPlan(plan, {0: "spark", 1: "spark", 2: "java", 3: "java"}, reg)
        row = model.design_row(xp, columns)
        assert row[columns["cfix::collect"]] == 1.0
        assert row[columns["cw::collect"]] > 0

    def test_from_coefficients_validates_length(self, reg):
        columns = CostModel.design_columns(["Map"], reg.names, CONVERSION_KINDS)
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            CostModel.from_coefficients(reg, columns, np.zeros(3))
