"""Tests for execution plans and conversion derivation."""

import pytest

from repro.exceptions import PlanError, PlatformError
from repro.rheem.datasets import DatasetProfile
from repro.rheem.execution_plan import (
    ExecutionPlan,
    feasible_platforms,
    single_platform_plan,
)
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import default_registry

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


class TestConstruction:
    def test_complete_assignment_required(self, reg):
        plan = build_pipeline(2)
        with pytest.raises(PlanError):
            ExecutionPlan(plan, {0: "java"}, reg)

    def test_extra_operators_rejected(self, reg):
        plan = build_pipeline(1)
        assignment = {i: "java" for i in plan.operators}
        assignment[99] = "java"
        with pytest.raises(PlanError):
            ExecutionPlan(plan, assignment, reg)

    def test_unsupported_platform_rejected(self):
        reg = default_registry(("java", "spark", "graphx"))
        plan = build_pipeline(1)
        assignment = {i: "graphx" for i in plan.operators}
        with pytest.raises(PlatformError):
            ExecutionPlan(plan, assignment, reg)

    def test_single_platform_helper(self, reg):
        plan = build_pipeline(2)
        xp = single_platform_plan(plan, "spark", reg)
        assert xp.platforms_used() == ("spark",)
        assert xp.num_platform_switches() == 0
        assert xp.conversions() == []


class TestConversions:
    def test_cross_platform_edge_gets_conversions(self, reg):
        plan = build_pipeline(2)  # src -> Filter -> Map -> sink
        assignment = {0: "spark", 1: "spark", 2: "java", 3: "java"}
        xp = ExecutionPlan(plan, assignment, reg)
        convs = xp.conversions()
        assert [c.kind for c in convs] == ["collect"]
        assert convs[0].edge == (1, 2)
        assert convs[0].platform == "spark"
        assert xp.num_platform_switches() == 1

    def test_conversion_carries_edge_cardinality(self, reg):
        plan = build_pipeline(2, cardinality=1000)
        assignment = {0: "spark", 1: "java", 2: "java", 3: "java"}
        xp = ExecutionPlan(plan, assignment, reg)
        (conv,) = xp.conversions()
        cards = plan.cardinalities()
        assert conv.cardinality == cards[0][1]

    def test_distributed_to_distributed_two_steps(self, reg):
        plan = build_pipeline(1)
        assignment = {0: "spark", 1: "flink", 2: "flink"}
        xp = ExecutionPlan(plan, assignment, reg)
        kinds = [c.kind for c in xp.conversions()]
        assert kinds == ["collect", "distribute"]

    def test_loop_edge_uses_broadcast_and_iterations(self, reg):
        plan = build_loop_plan(iterations=7)
        body = sorted(plan.loops[0].body)
        assignment = {i: "spark" for i in plan.operators}
        assignment[body[-1]] = "java"  # last body op on java
        # edge body[-2] -> body[-1] is spark->java inside the loop
        xp = ExecutionPlan(plan, assignment, reg)
        in_loop = [c for c in xp.conversions() if c.in_loop]
        assert in_loop, "expected loop-internal conversions"
        assert all(c.iterations == 7 for c in in_loop)
        kinds = {c.kind for c in xp.conversions()}
        # java -> spark edge back out of the body exists too (to next op)
        assert "collect" in kinds

    def test_loop_boundary_edge_runs_once(self, reg):
        plan = build_loop_plan(iterations=9)
        body = plan.loops[0].body
        src = plan.sources()[0]
        assignment = {i: ("flink" if i == src else "java") for i in plan.operators}
        xp = ExecutionPlan(plan, assignment, reg)
        for conv in xp.conversions():
            u, v = conv.edge
            if u == src:
                assert conv.iterations == 1

    def test_platforms_used_in_registry_order(self, reg):
        plan = build_join_plan()
        assignment = {i: "flink" for i in plan.operators}
        assignment[0] = "java"
        xp = ExecutionPlan(plan, assignment, reg)
        assert xp.platforms_used() == ("java", "flink")


class TestIdentity:
    def test_equality_and_hash(self, reg):
        plan = build_pipeline(2)
        a = single_platform_plan(plan, "java", reg)
        b = single_platform_plan(plan, "java", reg)
        c = single_platform_plan(plan, "spark", reg)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_describe_mentions_all_operators(self, reg):
        plan = build_pipeline(2)
        text = single_platform_plan(plan, "java", reg).describe()
        for op in plan.operators.values():
            assert op.label in text


class TestFeasiblePlatforms:
    def test_all_platforms_for_common_kind(self, reg):
        plan = build_pipeline(2)
        assert feasible_platforms(plan, reg, 1) == ["java", "spark", "flink"]

    def test_restricted_kind(self):
        reg = default_registry(("java", "spark", "postgres"))
        plan = LogicalPlan()
        s = plan.add(
            operator("TableSource"), dataset=DatasetProfile("t", 1000, 100)
        )
        k = plan.add(operator("CollectionSink"))
        plan.connect(s, k)
        assert feasible_platforms(plan, reg, s.id) == ["postgres"]

    def test_no_platform_raises(self):
        reg = default_registry(("java", "spark"))
        plan = LogicalPlan()
        s = plan.add(
            operator("TableSource"), dataset=DatasetProfile("t", 1000, 100)
        )
        k = plan.add(operator("CollectionSink"))
        plan.connect(s, k)
        with pytest.raises(PlatformError):
            feasible_platforms(plan, reg, s.id)
