"""Tests for boundary pruning (§IV-E) and β-switch pruning (§VI-A)."""

import numpy as np
import pytest

from repro.core.enumeration import EnumerationContext
from repro.core.operations import enumerate_abstract, vectorize
from repro.core.pruning import (
    boundary_operators,
    footprint_groups,
    ml_cost,
    prune,
    prune_switches,
    pruning_footprint,
    switch_cost,
)
from repro.exceptions import EnumerationError
from repro.rheem.platforms import synthetic_registry

from conftest import build_join_plan, build_pipeline, make_linear_cost


@pytest.fixture
def ctx():
    return EnumerationContext(build_pipeline(2), synthetic_registry(2))


@pytest.fixture
def full_enum(ctx):
    return enumerate_abstract(vectorize(ctx))


class TestBoundaryOperators:
    def test_full_scope_has_no_boundary(self, ctx):
        assert boundary_operators(ctx, frozenset(ctx.plan.operators)).size == 0

    def test_chain_prefix_boundary_is_last_op(self, ctx):
        boundary = boundary_operators(ctx, frozenset({0, 1}))
        assert boundary.tolist() == [1]

    def test_interior_scope_has_two_boundaries(self, ctx):
        boundary = boundary_operators(ctx, frozenset({1, 2}))
        assert boundary.tolist() == [1, 2]

    def test_join_scope_boundary(self):
        plan = build_join_plan()
        ctx = EnumerationContext(plan, synthetic_registry(2))
        join_id = next(i for i, op in plan.operators.items() if op.kind_name == "Join")
        scope = frozenset({join_id})
        assert boundary_operators(ctx, scope).tolist() == [join_id]


class TestFootprint:
    def test_footprint_shape(self, ctx):
        enum = enumerate_abstract(vectorize(ctx))
        fp = pruning_footprint(enum)
        assert fp.shape == (enum.n_vectors, 0)  # complete scope -> no boundary

    def test_footprint_groups_match_boundary_assignments(self, ctx):
        # Build the enumeration for a prefix scope with a real boundary.
        from repro.core.operations import enumerate_singleton, merge_enumerations, split

        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        prefix = merge_enumerations(parts[0], parts[1])  # scope {0,1}, boundary {1}
        groups = footprint_groups(prefix)
        boundary_platform = prefix.assignments[:, 1]
        # Same boundary platform <-> same group.
        for i in range(prefix.n_vectors):
            for j in range(prefix.n_vectors):
                same = boundary_platform[i] == boundary_platform[j]
                assert (groups[i] == groups[j]) == same


class TestPrune:
    def test_prune_keeps_min_per_footprint(self, ctx):
        from repro.core.operations import enumerate_singleton, merge_enumerations, split

        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        prefix = merge_enumerations(parts[0], parts[1])
        cost = make_linear_cost(ctx.schema, seed=3)
        pruned, costs = prune(prefix, cost)
        k = len(ctx.registry)
        assert pruned.n_vectors == k  # one per boundary platform (Lemma 1 regime)
        # kept vectors are the argmin of their group
        groups = footprint_groups(prefix)
        for row in range(pruned.n_vectors):
            row_cost = cost(pruned)[row]
            fp = pruned.assignments[row, 1]
            group_costs = costs[prefix.assignments[:, 1] == fp]
            assert row_cost == pytest.approx(group_costs.min())

    def test_prune_complete_scope_keeps_single_best(self, full_enum, ctx):
        cost = make_linear_cost(ctx.schema, seed=5)
        pruned, costs = prune(full_enum, cost)
        assert pruned.n_vectors == 1
        assert cost(pruned)[0] == pytest.approx(costs.min())

    def test_prune_is_deterministic_on_ties(self, full_enum):
        constant = lambda e: np.zeros(e.n_vectors)
        a, _ = prune(full_enum, constant)
        b, _ = prune(full_enum, constant)
        assert np.array_equal(a.assignments, b.assignments)

    def test_prune_bad_cost_shape_rejected(self, full_enum):
        with pytest.raises(EnumerationError):
            prune(full_enum, lambda e: np.zeros((e.n_vectors, 2)))

    def test_prune_empty_enumeration_rejected(self, full_enum):
        empty = full_enum.select(np.array([], dtype=np.int64))
        with pytest.raises(EnumerationError):
            prune(empty, lambda e: np.zeros(e.n_vectors))

    def test_ml_cost_feeds_feature_matrix(self, full_enum):
        class Probe:
            def __init__(self):
                self.shapes = []

            def predict(self, X):
                self.shapes.append(X.shape)
                return np.arange(X.shape[0], dtype=float)

        probe = Probe()
        costs = ml_cost(probe)(full_enum)
        assert probe.shapes == [(full_enum.n_vectors, full_enum.features.shape[1])]
        assert costs.tolist() == list(range(full_enum.n_vectors))


class TestSwitchPruning:
    def test_switch_cost_counts_internal_switches(self, full_enum):
        switches = switch_cost(full_enum)
        single = [
            row
            for row in range(full_enum.n_vectors)
            if len(set(full_enum.assignments[row].tolist())) == 1
        ]
        for row in single:
            assert switches[row] == 0

    def test_beta_filter(self, full_enum):
        pruned = prune_switches(full_enum, beta=0)
        assert np.all(pruned.switch_counts() == 0)
        k = 2
        assert pruned.n_vectors == k  # only the single-platform plans

    def test_beta_never_empties(self, full_enum):
        # Even with beta=0, vectors with minimal switches survive.
        pruned = prune_switches(full_enum, beta=0)
        assert pruned.n_vectors >= 1

    def test_negative_beta_rejected(self, full_enum):
        with pytest.raises(EnumerationError):
            prune_switches(full_enum, beta=-1)

    def test_beta_large_keeps_everything(self, full_enum):
        pruned = prune_switches(full_enum, beta=100)
        assert pruned.n_vectors == full_enum.n_vectors
