"""Tests for the package's public surface (`repro.__all__`, repro.api).

`__all__` is the single source of truth for what `repro` exports: every
listed name must resolve (eagerly or lazily), and the four optimizers
must all satisfy the shared :class:`repro.api.Optimizer` protocol and
return the unified :class:`OptimizationResult`.
"""

import numpy as np
import pytest

import repro
from conftest import build_pipeline, make_linear_cost
from repro.api import OptimizationResult, Optimizer, RunStats


class TestAllExports:
    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_all_is_sorted_into_dir(self):
        listing = dir(repro)
        for name in repro.__all__:
            assert name in listing

    def test_quickstart_names_are_exported(self):
        # the module docstring's quickstart must only use exported names
        for name in (
            "Robopt",
            "default_registry",
            "SimulatedExecutor",
            "TrainingDataGenerator",
            "RuntimeModel",
        ):
            assert name in repro.__all__

    def test_unified_api_names_are_exported(self):
        for name in (
            "Optimizer",
            "OptimizationResult",
            "RunStats",
            "RheemixOptimizer",
            "RheemMLOptimizer",
            "ExhaustiveOptimizer",
            "Tracer",
            "use_tracer",
        ):
            assert name in repro.__all__

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="NoSuchThing"):
            repro.NoSuchThing

    def test_lazy_names_resolve_to_canonical_classes(self):
        from repro.cost.optimizer import RheemixOptimizer
        from repro.simulator.executor import SimulatedExecutor

        assert repro.RheemixOptimizer is RheemixOptimizer
        assert repro.SimulatedExecutor is SimulatedExecutor


@pytest.fixture(scope="module")
def four_optimizers():
    """One instance of each optimizer over a shared 2-platform setup."""
    from repro.baselines.exhaustive import ExhaustiveOptimizer
    from repro.baselines.rheem_ml import RheemMLOptimizer
    from repro.bench.synthetic_setup import latency_setup
    from repro.core.optimizer import Robopt
    from repro.cost.optimizer import RheemixOptimizer

    registry, schema, model, cost_model = latency_setup(2)
    return {
        "robopt": Robopt(registry, model, schema=schema),
        "rheemix": RheemixOptimizer(registry, cost_model),
        "rheem-ml": RheemMLOptimizer(registry, model, schema=schema),
        "exhaustive": ExhaustiveOptimizer(registry, model, schema=schema),
    }


class TestOptimizerProtocol:
    def test_all_four_satisfy_protocol(self, four_optimizers):
        for name, optimizer in four_optimizers.items():
            assert isinstance(optimizer, Optimizer), name

    def test_all_four_return_unified_result(self, four_optimizers):
        plan = build_pipeline(3)
        for name, optimizer in four_optimizers.items():
            result = optimizer.optimize(plan)
            assert isinstance(result, OptimizationResult), name
            assert isinstance(result.stats, RunStats), name
            assert result.optimizer == name
            assert result.execution_plan is not None
            assert np.isfinite(result.predicted_runtime)
            assert result.stats.latency_s > 0.0
            assert result.stats.final_vectors >= 1

    def test_a_plain_object_is_not_an_optimizer(self):
        assert not isinstance(object(), Optimizer)


class TestAliasFreeSurface:
    """The one-release deprecation window is over: the pre-unification
    names are gone, not warning."""

    def test_object_world_type_aliases_still_resolve(self):
        # These are *type* aliases (same class, different vocabulary),
        # not deprecation shims — they stay.
        from repro.baselines.object_enumerator import (
            ObjectEnumerationResult,
            ObjectStats,
        )

        assert ObjectEnumerationResult is OptimizationResult
        assert ObjectStats is RunStats

    def test_enumeration_stats_reexport_is_gone(self):
        with pytest.raises(ImportError):
            from repro.core.enumerator import EnumerationStats  # noqa: F401

    def test_stats_attribute_aliases_are_gone(self):
        stats = RunStats(vectors_created=7, vectors_pruned=2, singleton_vectors=3)
        for old in (
            "subplans_created",
            "subplans_pruned",
            "singleton_subplans",
            "cost_evaluations",
        ):
            with pytest.raises(AttributeError):
                getattr(stats, old)

    def test_result_cost_alias_is_gone(self):
        result = OptimizationResult(execution_plan=None, predicted_runtime=1.5)
        with pytest.raises(AttributeError):
            result.cost

    def test_stats_as_dict_uses_canonical_names(self):
        blob = RunStats(vectors_created=4).as_dict()
        assert blob["vectors_created"] == 4
        assert "subplans_created" not in blob


class TestServingSurface:
    """The daemon/protocol/client types are first-class public API."""

    def test_daemon_names_are_exported(self):
        for name in (
            "OptimizationDaemon",
            "DaemonConfig",
            "ServeClient",
            "OptimizeRequest",
            "OptimizeResponse",
            "ErrorResponse",
            "PROTOCOL_VERSION",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None, name

    def test_lazy_daemon_names_resolve_to_canonical_classes(self):
        from repro.serve.client import ServeClient
        from repro.serve.daemon import OptimizationDaemon
        from repro.serve.protocol import OptimizeRequest

        assert repro.OptimizationDaemon is OptimizationDaemon
        assert repro.ServeClient is ServeClient
        assert repro.OptimizeRequest is OptimizeRequest

    def test_serve_all_is_importable(self):
        import repro.serve as serve

        for name in serve.__all__:
            assert getattr(serve, name) is not None, name
