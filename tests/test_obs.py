"""Tests for the observability layer (repro.obs).

Covers the tracer itself (nesting, counters, ambient installation), the
JSONL export round-trip, the counters-vs-RunStats consistency of a traced
enumeration, and the <5% no-op overhead requirement on the Fig. 9
efficiency micro-benchmark.
"""

import json
import time

import numpy as np
import pytest

from conftest import build_pipeline, make_linear_cost
from repro.core.enumerator import PriorityEnumerator
from repro.core.features import FeatureSchema
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    counters,
    current_tracer,
    read_trace,
    spans_named,
    use_tracer,
    write_trace,
)


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # spans are recorded in completion order: inner closes first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_span_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("work", phase="x") as span:
            span.set(rows=10)
        assert span.attrs == {"phase": "x", "rows": 10}

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.spans[0].name == "boom"
        assert tracer.spans[0].end_s is not None

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("n")
        tracer.count("n", 4)
        tracer.count("m", 2.5)
        assert tracer.counters == {"n": 5, "m": 2.5}

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            tracer.event("tick", k=1)
        tick = next(s for s in tracer.spans if s.name == "tick")
        assert tick.duration_s == 0.0
        assert tick.parent_id == parent.span_id

    def test_records_spans_then_sorted_counters(self):
        tracer = Tracer()
        tracer.count("z")
        tracer.count("a")
        with tracer.span("s"):
            pass
        records = tracer.records()
        assert [r["type"] for r in records] == ["span", "counter", "counter"]
        assert [r["name"] for r in records[1:]] == ["a", "z"]


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        with null.span("anything", big=object()) as span:
            span.set(more=1)
        null.count("x", 5)
        null.event("y")
        assert null.records() == []


class TestExport:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", label="r"):
            tracer.event("mark")
        tracer.count("hits", 3)
        path = tmp_path / "trace.jsonl"
        n = write_trace(tracer, path)
        assert n == 3
        # every line is a standalone JSON object
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)
        records = read_trace(path)
        assert counters(records) == {"hits": 3}
        assert spans_named(records, "root")[0]["attrs"] == {"label": "r"}

    def test_sanitizes_awkward_values(self, tmp_path):
        tracer = Tracer()
        with tracer.span(
            "s",
            card=np.float64(1.5),
            count=np.int64(7),
            bad=float("inf"),
            tup=(1, 2),
        ):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export(path)
        attrs = read_trace(path)[0]["attrs"]
        assert attrs["card"] == 1.5
        assert attrs["count"] == 7
        assert attrs["bad"] == "inf"
        assert attrs["tup"] == [1, 2]

    def test_tracer_export_counts_records(self, tmp_path):
        tracer = Tracer()
        tracer.count("only")
        assert tracer.export(tmp_path / "c.jsonl") == 1


class TestTracedEnumeration:
    """A traced enumeration's counters must agree with its RunStats."""

    @pytest.fixture
    def traced_run(self, reg3, tmp_path):
        schema = FeatureSchema(reg3)
        enumerator = PriorityEnumerator(
            reg3, cost_fn=make_linear_cost(schema), schema=schema
        )
        plan = build_pipeline(4)
        tracer = Tracer()
        with use_tracer(tracer):
            result = enumerator.enumerate_plan(plan)
        path = tmp_path / "run.jsonl"
        tracer.export(path)
        return result, read_trace(path)

    def test_counters_match_run_stats(self, traced_run):
        result, records = traced_run
        stats, totals = result.stats, counters(records)
        assert totals["enumerate.singleton_vectors"] == stats.singleton_vectors
        assert totals["enumerate.merges"] == stats.merges
        assert totals["enumerate.vectors_created"] == stats.vectors_created
        assert totals["enumerate.prune_calls"] == stats.prune_calls
        assert totals["enumerate.vectors_pruned"] == stats.vectors_pruned
        assert totals["enumerate.rows_predicted"] == stats.rows_predicted
        assert totals["enumerate.final_vectors"] == stats.final_vectors

    def test_span_taxonomy_and_nesting(self, traced_run):
        result, records = traced_run
        roots = spans_named(records, "enumerate")
        assert len(roots) == 1
        root = roots[0]
        assert root["parent"] is None
        # the root span carries the full RunStats dict as attributes
        assert root["attrs"]["merges"] == result.stats.merges
        merges = spans_named(records, "enumerate.merge")
        prunes = spans_named(records, "enumerate.prune")
        assert len(merges) == result.stats.merges
        assert len(prunes) == result.stats.prune_calls
        span_ids = {r["id"] for r in records if r.get("type") == "span"}
        for span in merges + prunes:
            assert span["parent"] in span_ids
        for prune in prunes:
            assert prune["attrs"]["rows"] >= prune["attrs"]["survivors"]

    def test_object_engine_emits_same_taxonomy(self, reg2, tmp_path):
        from repro.baselines.object_enumerator import ObjectEnumerator

        schema = FeatureSchema(reg2)
        vec_cost = make_linear_cost(schema)

        def batch_cost(plan, subplans, stats):
            # object-world adapter over the same linear oracle
            rows = np.vstack(
                [
                    schema.encode_partial(plan, sp.scope, sp.assignment)
                    for sp in subplans
                ]
            )

            class _E:
                features = rows

            return vec_cost(_E)

        enumerator = ObjectEnumerator(reg2, batch_cost)
        plan = build_pipeline(3)
        tracer = Tracer()
        with use_tracer(tracer):
            result = enumerator.enumerate_plan(plan)
        totals = tracer.counters
        assert totals["enumerate.merges"] == result.stats.merges
        assert totals["enumerate.prune_calls"] == result.stats.prune_calls
        root = next(s for s in tracer.spans if s.name == "enumerate")
        assert root.attrs["engine"] == "object"


class _TouchCountingTracer(NullTracer):
    """Counts how often instrumented code would touch an active tracer."""

    enabled = True

    def __init__(self):
        self.touches = 0

    def span(self, name, **attrs):
        self.touches += 1
        return super().span(name, **attrs)

    def count(self, name, value=1):
        self.touches += 1

    def event(self, name, **attrs):
        self.touches += 1


class TestNoOpOverhead:
    def test_null_tracer_overhead_below_5pct_of_fig9_micro(self):
        """The disabled tracer must cost <5% of a Fig. 9-style optimize.

        Flake-resistant formulation: instead of comparing two noisy
        wall-clock medians, count the tracer touchpoints of one traced
        run, measure the per-touch cost of the no-op tracer directly,
        and compare the product against the measured optimize latency.
        """
        from repro.bench.synthetic_setup import latency_setup
        from repro.core.optimizer import Robopt
        from repro.workloads import synthetic

        registry, schema, model, _ = latency_setup(2)
        robopt = Robopt(registry, model, schema=schema)
        plan = synthetic.pipeline_plan(20)
        robopt.optimize(plan)  # warm caches
        latency = min(robopt.optimize(plan).stats.latency_s for _ in range(3))

        touch = _TouchCountingTracer()
        with use_tracer(touch):
            robopt.optimize(plan)
        touches = touch.touches
        assert touches > 0, "the hot path should be instrumented"

        reps = max(1000, touches * 10)
        null = NULL_TRACER
        t0 = time.perf_counter()
        for _ in range(reps):
            if null.enabled:  # the guard every instrumented site pays
                with null.span("x", rows=1):
                    pass
                null.count("c")
        per_touch = (time.perf_counter() - t0) / reps
        overhead = per_touch * touches
        assert overhead < 0.05 * latency, (
            f"no-op tracing cost {overhead * 1e6:.1f}us "
            f"vs latency {latency * 1e6:.1f}us"
        )


class TestUnifiedApiNames:
    def test_run_stats_aliases_are_gone(self):
        from repro.api import RunStats

        stats = RunStats(vectors_created=5)
        assert stats.vectors_created == 5
        for old in (
            "subplans_created",
            "subplans_pruned",
            "singleton_subplans",
            "cost_evaluations",
        ):
            with pytest.raises(AttributeError):
                getattr(stats, old)

    def test_result_cost_alias_is_gone(self):
        from repro.api import OptimizationResult

        result = OptimizationResult(execution_plan=None, predicted_runtime=2.0)
        with pytest.raises(AttributeError):
            result.cost
        assert result.predicted_cost == 2.0
        assert result.latency_s == result.stats.latency_s
