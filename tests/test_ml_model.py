"""Tests for RuntimeModel and TrainingDataset."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.model import ALGORITHMS, RuntimeModel, TrainingDataset


@pytest.fixture
def dataset():
    rng = np.random.default_rng(6)
    X = rng.uniform(0, 10, size=(300, 8))
    y = np.abs(X[:, 0] * 3 + X[:, 1] + rng.normal(0, 0.1, 300))
    meta = [{"i": i} for i in range(300)]
    return TrainingDataset(X, y, meta)


class TestTrainingDataset:
    def test_shapes_validated(self):
        with pytest.raises(ModelError):
            TrainingDataset(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            TrainingDataset(np.zeros((3, 2)), np.zeros(3), meta=[{}])

    def test_len_and_features(self, dataset):
        assert len(dataset) == 300
        assert dataset.n_features == 8

    def test_split_partitions(self, dataset):
        train, test = dataset.split(0.25, seed=1)
        assert len(train) + len(test) == 300
        assert len(test) == 75
        assert train.meta and test.meta
        indices = {m["i"] for m in train.meta} | {m["i"] for m in test.meta}
        assert indices == set(range(300))

    def test_split_validation(self, dataset):
        with pytest.raises(ModelError):
            dataset.split(0.0)
        with pytest.raises(ModelError):
            dataset.split(1.0)

    def test_take(self, dataset):
        sub = dataset.take(np.array([0, 5, 7]))
        assert len(sub) == 3
        assert sub.meta[1]["i"] == 5

    def test_extend(self, dataset):
        combined = dataset.extend(dataset)
        assert len(combined) == 600
        with pytest.raises(ModelError):
            dataset.extend(TrainingDataset(np.zeros((2, 3)), np.zeros(2)))

    def test_save_load_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "ds.pkl"
        dataset.save(path)
        loaded = TrainingDataset.load(path)
        assert np.allclose(loaded.X, dataset.X)
        assert np.allclose(loaded.y, dataset.y)
        assert loaded.meta == dataset.meta


class TestRuntimeModel:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_train_all_algorithms(self, dataset, algorithm):
        params = {"n_estimators": 5} if algorithm == "random_forest" else {}
        if algorithm == "mlp":
            params = {"epochs": 20}
        model = RuntimeModel.train(dataset, algorithm, seed=0, **params)
        preds = model.predict(dataset.X[:10])
        assert preds.shape == (10,)
        assert np.all(preds >= 0)
        assert model.metrics["spearman"] > 0.5

    def test_unknown_algorithm(self, dataset):
        with pytest.raises(ModelError):
            RuntimeModel.train(dataset, "svm")

    def test_needs_minimum_rows(self):
        tiny = TrainingDataset(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ModelError):
            RuntimeModel.train(tiny)

    def test_predict_shape_checks(self, dataset):
        model = RuntimeModel.train(dataset, "linear", seed=0)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 5)))

    def test_predict_accepts_single_vector(self, dataset):
        model = RuntimeModel.train(dataset, "linear", seed=0)
        value = model.predict_one(dataset.X[0])
        assert isinstance(value, float)
        assert value >= 0

    def test_predictions_never_negative(self, dataset):
        model = RuntimeModel.train(dataset, "linear", seed=0)
        wild = dataset.X - 100.0
        assert np.all(model.predict(wild) >= 0)

    def test_save_load_roundtrip(self, dataset, tmp_path):
        model = RuntimeModel.train(dataset, "random_forest", seed=0, n_estimators=5)
        path = tmp_path / "model.pkl"
        model.save(path)
        loaded = RuntimeModel.load(path)
        assert np.allclose(loaded.predict(dataset.X[:20]), model.predict(dataset.X[:20]))
        assert loaded.algorithm == "random_forest"
        assert loaded.metrics == model.metrics

    def test_metrics_populated(self, dataset):
        model = RuntimeModel.train(dataset, "linear", seed=0)
        for key in ("rmse_log", "spearman", "q50", "q95", "n_train", "n_test"):
            assert key in model.metrics
