"""Tests for the benchmark support code (synthetic setups, artifacts dir)."""

import numpy as np
import pytest

from repro.bench.context import artifacts_dir
from repro.bench.synthetic_setup import latency_setup


class TestLatencySetup:
    def test_returns_consistent_bundle(self):
        registry, schema, model, cost_model = latency_setup(3)
        assert len(registry) == 3
        assert schema.registry is registry
        assert model.n_features == schema.n_features
        assert cost_model.registry is registry

    def test_cached_per_k(self):
        a = latency_setup(2)
        b = latency_setup(2)
        assert a is b
        c = latency_setup(4)
        assert c is not a

    def test_model_predicts_on_schema_vectors(self):
        registry, schema, model, _ = latency_setup(2)
        X = np.zeros((4, schema.n_features))
        preds = model.predict(X)
        assert preds.shape == (4,)
        assert np.all(preds >= 0)

    def test_cost_model_covers_every_kind(self):
        registry, _, _, cost_model = latency_setup(2)
        from repro.rheem.operators import KINDS

        for kind in KINDS:
            for name in registry.names:
                assert (kind, name) in cost_model.parameters.operator_coeffs

    def test_cost_model_usable_by_rheemix(self):
        from repro.cost.optimizer import RheemixOptimizer
        from repro.workloads import synthetic

        registry, _, _, cost_model = latency_setup(2)
        result = RheemixOptimizer(registry, cost_model).optimize(
            synthetic.pipeline_plan(6)
        )
        assert result.predicted_runtime > 0


class TestArtifactsDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "cache"))
        assert artifacts_dir() == tmp_path / "cache"

    def test_defaults_to_repo_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        path = artifacts_dir()
        assert path.name == ".artifacts"
        assert (path.parent / "pyproject.toml").exists()
