"""Tests for PlanVectorEnumeration and EnumerationContext."""

import numpy as np
import pytest

from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.core.operations import enumerate_abstract, enumerate_singleton, split, vectorize
from repro.exceptions import EnumerationError, ScopeError
from repro.rheem.platforms import synthetic_registry

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def ctx():
    return EnumerationContext(build_pipeline(2), synthetic_registry(3))


class TestContext:
    def test_alternatives_per_operator(self, ctx):
        for op_id in ctx.plan.operators:
            alts = ctx.alternatives[op_id]
            assert len(alts) == 3
            assert set(alts.tolist()) == {0, 1, 2}

    def test_edges_carry_cardinalities(self, ctx):
        cards = ctx.plan.cardinalities()
        for edge in ctx.edges:
            assert edge.cardinality == cards[edge.src][1]

    def test_edge_deltas_exist_for_all_cross_pairs(self, ctx):
        k = len(ctx.registry)
        for edge in ctx.edges:
            assert len(edge.deltas) == k * (k - 1)

    def test_edge_lookup(self, ctx):
        u, v = ctx.plan.edges[0]
        assert ctx.edge(u, v).src == u
        with pytest.raises(EnumerationError):
            ctx.edge(99, 100)

    def test_static_cache_returns_same_array(self, ctx):
        scope = frozenset({0, 1})
        assert ctx.static_features(scope) is ctx.static_features(scope)

    def test_crossing_edges(self, ctx):
        crossing = ctx.crossing_edges(frozenset({0, 1}), frozenset({2}))
        assert [(e.src, e.dst) for e in crossing] == [(1, 2)]
        assert ctx.crossing_edges(frozenset({0}), frozenset({3})) == []

    def test_loop_edge_metadata(self):
        plan = build_loop_plan(iterations=4)
        ctx = EnumerationContext(plan, synthetic_registry(2))
        body = plan.loops[0].body
        internal = [e for e in ctx.edges if e.src in body and e.dst in body]
        assert internal
        assert all(e.in_loop and e.iterations == 4 for e in internal)


class TestEnumerationObject:
    def test_shape_validation(self, ctx):
        with pytest.raises(EnumerationError):
            PlanVectorEnumeration(
                ctx,
                frozenset({0}),
                np.zeros((2, ctx.schema.n_features)),
                np.zeros((3, ctx.n_ops), dtype=np.int8),
            )
        with pytest.raises(EnumerationError):
            PlanVectorEnumeration(
                ctx,
                frozenset({0}),
                np.zeros((2, ctx.schema.n_features)),
                np.zeros((2, ctx.n_ops + 1), dtype=np.int8),
            )

    def test_len_and_is_complete(self, ctx):
        part = enumerate_singleton(split(vectorize(ctx))[0])
        assert len(part) == 3
        assert not part.is_complete
        full = enumerate_abstract(vectorize(ctx))
        assert full.is_complete

    def test_boundary_ids_cached_and_sorted(self, ctx):
        part = enumerate_singleton(split(vectorize(ctx))[1])
        b1 = part.boundary_ids()
        assert b1.tolist() == [1]
        assert part.boundary_ids() is b1

    def test_select_subsets_rows(self, ctx):
        full = enumerate_abstract(vectorize(ctx))
        sel = full.select(np.array([0, 2, 4]))
        assert sel.n_vectors == 3
        assert np.array_equal(sel.features[1], full.features[2])
        assert sel.scope == full.scope

    def test_assignment_dict_names(self, ctx):
        part = enumerate_singleton(split(vectorize(ctx))[0])
        d = part.assignment_dict(1)
        assert set(d) == {0}
        assert d[0] in ctx.registry.names

    def test_switch_counts_zero_for_singletons(self, ctx):
        part = enumerate_singleton(split(vectorize(ctx))[0])
        assert np.all(part.switch_counts() == 0)

    def test_switch_counts_full(self, ctx):
        full = enumerate_abstract(vectorize(ctx))
        switches = full.switch_counts()
        n_edges = len(ctx.plan.edges)
        assert switches.max() <= n_edges
        assert switches.min() == 0

    def test_scope_disjoint_check(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        parts[0].check_scope_disjoint(parts[1])
        with pytest.raises(ScopeError):
            parts[0].check_scope_disjoint(parts[0])

    def test_registry_mismatch_rejected(self):
        plan = build_pipeline(2)
        reg = synthetic_registry(2)
        other_schema_ctx_registry = synthetic_registry(3)
        from repro.core.features import FeatureSchema

        with pytest.raises(EnumerationError):
            EnumerationContext(
                plan, reg, FeatureSchema(other_schema_ctx_registry)
            )
