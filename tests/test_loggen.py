"""Tests for log generation and runtime interpolation (§VI-B, Fig. 8)."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.rheem.execution_plan import single_platform_plan
from repro.rheem.platforms import default_registry
from repro.simulator.executor import SimulatedExecutor
from repro.tdgen.loggen import (
    FAILURE_PENALTY_S,
    LogGenerator,
    interpolate_level,
    interpolate_runtimes,
)

from conftest import build_pipeline


class TestInterpolateRuntimes:
    def test_passes_through_training_points(self):
        cards = np.geomspace(1e3, 1e7, 6)
        runtimes = 2.0 + cards / 1e5
        predicted = interpolate_runtimes(cards, runtimes, cards)
        assert np.allclose(predicted, runtimes, rtol=1e-6)

    def test_interpolates_polynomial_growth(self):
        cards = np.geomspace(1e3, 1e7, 8)
        runtimes = 1e-6 * cards ** 1.2
        query = np.geomspace(2e3, 5e6, 5)
        predicted = interpolate_runtimes(cards, runtimes, query)
        expected = 1e-6 * query ** 1.2
        assert np.allclose(predicted, expected, rtol=0.05)

    def test_unsorted_input_accepted(self):
        cards = np.array([1e5, 1e3, 1e4])
        runtimes = cards / 1e3
        predicted = interpolate_runtimes(cards, runtimes, [5e3])
        assert 1.0 < predicted[0] < 100.0

    def test_degree_caps_at_point_count(self):
        predicted = interpolate_runtimes([1e3, 1e6], [1.0, 1000.0], [1e4])
        assert 1.0 <= predicted[0] <= 1000.0

    def test_predictions_clipped_to_penalty(self):
        cards = np.geomspace(1e3, 1e6, 6)
        runtimes = 1e-9 * cards ** 3  # explosive growth
        predicted = interpolate_runtimes(cards, runtimes, [1e8])
        assert predicted[0] <= FAILURE_PENALTY_S

    def test_validation(self):
        with pytest.raises(GenerationError):
            interpolate_runtimes([1e3], [1.0], [1e4])
        with pytest.raises(GenerationError):
            interpolate_runtimes([1e3, 1e3], [1.0, 2.0], [1e4])
        with pytest.raises(GenerationError):
            interpolate_runtimes([1e3, -1], [1.0, 2.0], [1e4])
        with pytest.raises(GenerationError):
            interpolate_runtimes([1e3, 1e4], [1.0], [1e4])


class TestInterpolateLevel:
    def test_endpoint_exact(self):
        assert interpolate_level(1, 10.0, 4, 100.0, 1) == 10.0
        assert interpolate_level(1, 10.0, 4, 100.0, 4) == 100.0

    def test_midpoints_monotone(self):
        v2 = interpolate_level(1, 10.0, 4, 100.0, 2)
        v3 = interpolate_level(1, 10.0, 4, 100.0, 3)
        assert 10.0 < v2 < v3 < 100.0

    def test_clipped_to_penalty(self):
        value = interpolate_level(1, 0.0, 4, 1e9, 3)
        assert value <= FAILURE_PENALTY_S


class TestLogGenerator:
    @pytest.fixture
    def setup(self):
        registry = default_registry(("java", "spark"))
        executor = SimulatedExecutor.default(registry)
        return registry, executor

    def test_label_grid_covers_everything(self, setup):
        registry, executor = setup
        loggen = LogGenerator(executor)
        cards = list(np.geomspace(1e4, 1e7, 6))

        def make_xplan(card, level):
            return single_platform_plan(
                build_pipeline(3, cardinality=card), "spark", registry
            )

        records = loggen.label_grid(
            make_xplan,
            cardinalities=cards,
            executed_card_indices=[0, 1, 2, 5],
            levels=[1, 2, 3, 4],
            executed_levels=[1, 4],
        )
        assert len(records) == 6 * 4
        executed = [r for r in records if r.executed]
        imputed = [r for r in records if not r.executed]
        assert len(executed) == 4 * 2  # executed cards x executed levels
        assert len(imputed) == 24 - 8
        assert loggen.n_executed == 8
        assert loggen.n_imputed == 16
        assert all(r.runtime >= 0 for r in records)

    def test_failures_get_penalty_label(self, setup):
        registry, executor = setup
        loggen = LogGenerator(executor)
        cards = [1e4, 1e6, 5e9]  # the last one OOMs on java

        def make_xplan(card, level):
            return single_platform_plan(
                build_pipeline(3, cardinality=card), "java", registry
            )

        records = loggen.label_grid(
            make_xplan,
            cardinalities=cards,
            executed_card_indices=[0, 1, 2],
            levels=[2],
            executed_levels=[2],
        )
        oom = [r for r in records if r.status == "oom"]
        assert oom and all(r.runtime == FAILURE_PENALTY_S for r in oom)

    def test_imputed_runtimes_between_neighbours(self, setup):
        registry, executor = setup
        loggen = LogGenerator(executor)
        cards = list(np.geomspace(1e4, 1e7, 5))

        def make_xplan(card, level):
            return single_platform_plan(
                build_pipeline(3, cardinality=card), "spark", registry
            )

        records = loggen.label_grid(
            make_xplan,
            cardinalities=cards,
            executed_card_indices=[0, 1, 2, 4],
            levels=[2],
            executed_levels=[2],
        )
        by_card = {r.cardinality: r for r in records}
        imputed = by_card[cards[3]]
        assert not imputed.executed
        assert by_card[cards[2]].runtime <= imputed.runtime <= by_card[cards[4]].runtime
