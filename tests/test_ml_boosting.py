"""Tests for gradient boosting."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.boosting import GradientBoostingRegressor


@pytest.fixture
def data():
    rng = np.random.default_rng(2)
    X = rng.uniform(-1, 1, size=(500, 4))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.5 * X[:, 2]
    return X, y


class TestBoosting:
    def test_beats_single_tree_on_smooth_target(self, data):
        X, y = data
        from repro.ml.tree import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        boost = GradientBoostingRegressor(
            n_estimators=100, max_depth=4, seed=0
        ).fit(X, y)
        err_tree = np.mean((tree.predict(X) - y) ** 2)
        err_boost = np.mean((boost.predict(X) - y) ** 2)
        assert err_boost < err_tree

    def test_training_error_decreases_with_stages(self, data):
        X, y = data
        boost = GradientBoostingRegressor(
            n_estimators=60, seed=0, subsample=1.0
        ).fit(X, y)
        curve = boost.staged_score(X, y)
        assert curve[-1] < curve[0]
        # Mostly decreasing (allow small wiggles from shallow stages).
        assert curve[-1] <= np.min(curve) + 1e-9

    def test_learning_rate_shrinkage(self, data):
        X, y = data
        slow = GradientBoostingRegressor(
            n_estimators=5, learning_rate=0.01, seed=0
        ).fit(X, y)
        fast = GradientBoostingRegressor(
            n_estimators=5, learning_rate=0.5, seed=0
        ).fit(X, y)
        err_slow = np.mean((slow.predict(X) - y) ** 2)
        err_fast = np.mean((fast.predict(X) - y) ** 2)
        assert err_fast < err_slow  # few stages: large steps fit faster

    def test_reproducible(self, data):
        X, y = data
        a = GradientBoostingRegressor(n_estimators=10, seed=5).fit(X, y).predict(X[:9])
        b = GradientBoostingRegressor(n_estimators=10, seed=5).fit(X, y).predict(X[:9])
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ModelError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ModelError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ModelError):
            GradientBoostingRegressor(subsample=1.5)
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict(np.zeros((2, 2)))
        with pytest.raises(ModelError):
            GradientBoostingRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_runtime_model_integration(self, data):
        X, y = data
        from repro.ml.model import RuntimeModel, TrainingDataset

        dataset = TrainingDataset(X, np.abs(y) + 0.1)
        model = RuntimeModel.train(dataset, "boosting", seed=0, n_estimators=40)
        assert model.metrics["spearman"] > 0.5
        assert np.all(model.predict(X[:10]) >= 0)
