"""Tests for the Table II workloads and synthetic plan generators."""

import pytest

from repro.rheem.datasets import GB, MB
from repro.rheem.platforms import default_registry
from repro.workloads import (
    TABLE2,
    crocopr,
    kmeans,
    sgd,
    simwords,
    synthetic,
    tpch,
    word2nvec,
    wordcount,
)


class TestTable2OperatorCounts:
    """Table II pins the operator count of every query."""

    def test_wordcount(self):
        assert wordcount.plan().n_operators == 6

    def test_word2nvec(self):
        assert word2nvec.plan().n_operators == 14

    def test_simwords(self):
        assert simwords.plan().n_operators == 26

    def test_tpch_q1(self):
        assert tpch.q1().n_operators == 7

    def test_tpch_q3(self):
        assert tpch.q3().n_operators == 18

    def test_kmeans(self):
        assert kmeans.plan().n_operators == 7

    def test_sgd(self):
        assert sgd.plan().n_operators == 6

    def test_crocopr(self):
        assert crocopr.plan().n_operators == 22

    def test_table2_registry_is_consistent(self):
        for name, (module, n_ops, dataset) in TABLE2.items():
            if name == "TPC-H Q1":
                plan = module.q1()
            elif name == "TPC-H Q3":
                plan = module.q3()
            else:
                plan = module.plan()
            assert plan.n_operators == n_ops, name


class TestPlanValidity:
    @pytest.mark.parametrize(
        "builder",
        [
            wordcount.plan,
            word2nvec.plan,
            simwords.plan,
            tpch.q1,
            tpch.q3,
            kmeans.plan,
            sgd.plan,
            crocopr.plan,
        ],
    )
    def test_plans_validate(self, builder):
        builder().validate()

    @pytest.mark.parametrize(
        "builder",
        [wordcount.plan, word2nvec.plan, tpch.q1, tpch.q3, kmeans.plan, sgd.plan],
    )
    def test_plans_scale_with_size(self, builder):
        small = builder(100 * MB)
        large = builder(10 * GB)
        s_card = sum(d.cardinality for d in small.datasets.values())
        l_card = sum(d.cardinality for d in large.datasets.values())
        assert l_card > s_card * 50

    def test_iterative_workloads_have_loops(self):
        assert kmeans.plan().topology_counts().loop == 1
        assert sgd.plan().topology_counts().loop == 1
        assert crocopr.plan().topology_counts().loop == 1
        assert simwords.plan().topology_counts().loop == 1

    def test_simwords_has_all_topologies(self):
        topo = simwords.plan().topology_counts()
        assert topo.pipeline >= 1
        assert topo.juncture >= 1
        assert topo.replicate >= 1
        assert topo.loop >= 1

    def test_q3_has_two_joins(self):
        plan = tpch.q3()
        joins = [op for op in plan.operators.values() if op.kind_name == "Join"]
        assert len(joins) == 2

    def test_sgd_cache_feeds_sample(self):
        plan = sgd.plan()
        sample = next(
            i
            for i, op in plan.operators.items()
            if op.kind_name == "ShufflePartitionSample"
        )
        assert [plan.operators[p].kind_name for p in plan.parents(sample)] == ["Cache"]

    def test_kmeans_parameters(self):
        plan = kmeans.plan(n_centroids=10, iterations=5)
        assert plan.loops[0].iterations == 5
        reduce_op = next(
            op for op in plan.operators.values() if op.kind_name == "ReduceBy"
        )
        assert reduce_op.fixed_output_cardinality == 10

    def test_sgd_parameters(self):
        plan = sgd.plan(batch_size=77, iterations=9)
        assert plan.loops[0].iterations == 9
        sample = next(
            op
            for op in plan.operators.values()
            if op.kind_name == "ShufflePartitionSample"
        )
        assert sample.fixed_output_cardinality == 77

    def test_crocopr_variants(self):
        hdfs = crocopr.plan(in_postgres=False)
        pg = crocopr.plan(in_postgres=True)
        assert hdfs.n_operators == pg.n_operators == 22
        assert any(
            op.kind_name == "TableSource" for op in pg.operators.values()
        )
        assert not any(
            op.kind_name == "TableSource" for op in hdfs.operators.values()
        )

    def test_tpch_postgres_variant_runs_on_pg_prefix(self):
        reg = default_registry(("java", "spark", "flink", "postgres"))
        plan = tpch.q3(in_postgres=True)
        from repro.rheem.execution_plan import feasible_platforms

        for src in plan.sources():
            assert feasible_platforms(plan, reg, src) == ["postgres"]

    def test_invalid_parameters_rejected(self):
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError):
            kmeans.plan(n_centroids=0)
        with pytest.raises(GenerationError):
            sgd.plan(iterations=0)
        with pytest.raises(GenerationError):
            crocopr.plan(iterations=0)
        with pytest.raises(ValueError):
            tpch.plan(variant="q9")


class TestSynthetic:
    @pytest.mark.parametrize("n", [3, 5, 20, 80])
    def test_pipeline_plan_exact_size(self, n):
        plan = synthetic.pipeline_plan(n)
        plan.validate()
        assert plan.n_operators == n

    def test_pipeline_plan_seeded_variation(self):
        a = synthetic.pipeline_plan(10, seed=1)
        b = synthetic.pipeline_plan(10, seed=2)
        kinds_a = [op.kind_name for op in a.operators.values()]
        kinds_b = [op.kind_name for op in b.operators.values()]
        assert kinds_a != kinds_b

    @pytest.mark.parametrize("j", [1, 2, 3, 5])
    def test_join_plan_join_count(self, j):
        plan = synthetic.join_plan(j)
        plan.validate()
        joins = [op for op in plan.operators.values() if op.kind_name == "Join"]
        assert len(joins) == j

    def test_dataflow_plan_forty_operators(self):
        plan = synthetic.dataflow_plan(40)
        plan.validate()
        assert plan.n_operators == 40
        assert plan.topology_counts().juncture >= 1

    def test_generation_errors(self):
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError):
            synthetic.pipeline_plan(2)
        with pytest.raises(GenerationError):
            synthetic.join_plan(0)
        with pytest.raises(GenerationError):
            synthetic.dataflow_plan(5)
