"""Tests for the simulated execution environment."""

import numpy as np
import pytest

from repro.exceptions import ExecutionFailure, SimulationError
from repro.rheem.datasets import GB, MB, DatasetProfile
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator
from repro.rheem.platforms import default_registry, synthetic_registry
from repro.simulator.executor import (
    STATUS_OK,
    STATUS_OOM,
    STATUS_TIMEOUT,
    SimulatedExecutor,
)
from repro.simulator.profiles import (
    COMPLEXITY_WORK,
    KIND_WORK,
    PlatformProfile,
    default_profiles,
)

from conftest import build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


@pytest.fixture
def executor(reg):
    return SimulatedExecutor.default(reg)


class TestProfiles:
    def test_default_profiles_cover_registry(self, reg):
        profiles = default_profiles(reg)
        assert set(profiles) == {"java", "spark", "flink"}

    def test_synthetic_profiles_generated(self):
        profiles = default_profiles(synthetic_registry(4))
        assert set(profiles) == {f"platform{i}" for i in range(4)}
        assert profiles["platform0"].startup_s == 0.0

    def test_unknown_platform_rejected(self):
        from repro.rheem.platforms import Platform, PlatformRegistry

        reg = PlatformRegistry([Platform("mystery")])
        with pytest.raises(SimulationError):
            default_profiles(reg)

    def test_profile_validation(self):
        with pytest.raises(SimulationError):
            PlatformProfile(
                name="x", startup_s=0, per_op_overhead_s=0, tuple_rate=0,
                shuffle_rate=1, io_rate=1, loop_overhead_s=0,
            )

    def test_kind_speed_default_one(self):
        profiles = default_profiles(default_registry(("spark",)))
        assert profiles["spark"].speed("NoSuchKind") == 1.0

    def test_with_overrides(self):
        p = default_profiles(default_registry(("spark",)))["spark"]
        q = p.with_overrides(startup_s=99.0)
        assert q.startup_s == 99.0
        assert q.tuple_rate == p.tuple_rate

    def test_complexity_work_monotone(self):
        values = [COMPLEXITY_WORK[c] for c in UdfComplexity]
        assert values == sorted(values)

    def test_every_catalog_kind_has_work(self):
        from repro.rheem.operators import KINDS

        for name in KINDS:
            assert name in KIND_WORK


class TestExecution:
    def test_deterministic_without_noise(self, executor, reg):
        plan = build_pipeline(3)
        xp = single_platform_plan(plan, "spark", reg)
        a = executor.execute(xp).runtime_s
        b = executor.execute(xp).runtime_s
        assert a == b

    def test_breakdown_sums_to_total(self, executor, reg):
        plan = build_pipeline(3)
        report = executor.execute(single_platform_plan(plan, "flink", reg))
        b = report.breakdown
        assert report.status == STATUS_OK
        assert b["total"] == pytest.approx(
            b["startup"] + b["operators"] + b["conversions"] + b["loops"]
        )

    def test_startup_charged_once_per_platform(self, executor, reg):
        plan = build_pipeline(3)
        report = executor.execute(single_platform_plan(plan, "spark", reg))
        assert report.breakdown["startup"] == pytest.approx(6.0)

    def test_more_data_takes_longer(self, executor, reg):
        small = single_platform_plan(build_pipeline(3, 1e5), "spark", reg)
        large = single_platform_plan(build_pipeline(3, 1e9), "spark", reg)
        assert executor.execute(large).runtime_s > executor.execute(small).runtime_s

    def test_java_wins_small_spark_wins_big(self, executor, reg):
        small = build_pipeline(3, 1e5)
        big = build_pipeline(3, 5e9)
        t_small = {
            p: executor.execute(single_platform_plan(small, p, reg)).runtime_s
            for p in ("java", "spark")
        }
        assert t_small["java"] < t_small["spark"]
        r_big = {
            p: executor.execute(single_platform_plan(big, p, reg))
            for p in ("java", "spark")
        }
        assert not r_big["java"].ok or (
            r_big["java"].runtime_s > r_big["spark"].runtime_s
        )

    def test_conversions_cost_time(self, executor, reg):
        plan = build_pipeline(2)
        same = single_platform_plan(plan, "spark", reg)
        mixed = ExecutionPlan(
            plan, {0: "spark", 1: "spark", 2: "java", 3: "java"}, reg
        )
        assert executor.execute(mixed).breakdown["conversions"] > 0
        assert executor.execute(same).breakdown["conversions"] == 0


class TestFailureModes:
    def test_java_oom_on_huge_input(self, executor, reg):
        plan = build_pipeline(3, cardinality=5e9)  # ~500 GB at 100 B/tuple
        report = executor.execute(single_platform_plan(plan, "java", reg))
        assert report.status == STATUS_OOM
        assert report.runtime_s == float("inf")
        assert not report.ok

    def test_distributed_platforms_spill_instead(self, executor, reg):
        plan = build_pipeline(3, cardinality=5e9)
        report = executor.execute(single_platform_plan(plan, "spark", reg))
        assert report.status in (STATUS_OK, STATUS_TIMEOUT)

    def test_timeout_reported(self, executor, reg):
        plan = build_pipeline(3, cardinality=1e9)
        report = executor.execute(
            single_platform_plan(plan, "spark", reg), timeout_s=1.0
        )
        assert report.status == STATUS_TIMEOUT
        assert report.runtime_s == 1.0

    def test_measure_raises_on_failure(self, executor, reg):
        plan = build_pipeline(3, cardinality=5e9)
        with pytest.raises(ExecutionFailure):
            executor.measure(single_platform_plan(plan, "java", reg))

    def test_measure_returns_runtime_on_success(self, executor, reg):
        plan = build_pipeline(3)
        value = executor.measure(single_platform_plan(plan, "flink", reg))
        assert value > 0


class TestLoops:
    def test_iterations_multiply_loop_body_cost(self, executor, reg):
        short = single_platform_plan(build_loop_plan(iterations=2), "spark", reg)
        long = single_platform_plan(build_loop_plan(iterations=50), "spark", reg)
        assert (
            executor.execute(long).runtime_s
            > executor.execute(short).runtime_s
        )

    def test_java_cheaper_loop_driving(self, executor, reg):
        plan = build_loop_plan(iterations=200, cardinality=1e4)
        t_java = executor.execute(single_platform_plan(plan, "java", reg)).runtime_s
        t_spark = executor.execute(single_platform_plan(plan, "spark", reg)).runtime_s
        assert t_java < t_spark

    def test_small_state_on_java_beats_spark_state(self, executor, reg):
        plan = build_loop_plan(iterations=100, cardinality=1e6)
        body = sorted(plan.loops[0].body)
        all_spark = {i: "spark" for i in plan.operators}
        hybrid = dict(all_spark)
        hybrid[body[-1]] = "java"  # tiny state op (ReduceBy out=64 -> Map)
        t_all = executor.execute(ExecutionPlan(plan, all_spark, reg)).runtime_s
        t_hyb = executor.execute(ExecutionPlan(plan, hybrid, reg)).runtime_s
        assert t_hyb < t_all

    def test_cache_sample_state_loss_penalty(self, reg, executor):
        from repro.workloads import sgd

        plan = sgd.plan(2 * GB, iterations=200)
        ids = {op.label: op.id for op in plan.operators.values()}
        all_spark = {i: "spark" for i in plan.operators}
        t_lost = executor.execute(ExecutionPlan(plan, all_spark, reg)).runtime_s
        moved = dict(all_spark)
        moved[ids["Cache(points)"]] = "flink"  # cache off the sample platform
        t_kept = executor.execute(ExecutionPlan(plan, moved, reg)).runtime_s
        assert t_lost > t_kept


class TestNoise:
    def test_noise_is_deterministic_per_plan(self, reg):
        plan = build_pipeline(3)
        xp = single_platform_plan(plan, "spark", reg)
        ex = SimulatedExecutor.default(reg, seed=1, noise=0.2)
        assert ex.execute(xp).runtime_s == ex.execute(xp).runtime_s

    def test_noise_varies_across_plans(self, reg):
        ex = SimulatedExecutor.default(reg, seed=1, noise=0.2)
        ex0 = SimulatedExecutor.default(reg)
        a = single_platform_plan(build_pipeline(3), "spark", reg)
        b = single_platform_plan(build_pipeline(4), "spark", reg)
        ratio_a = ex.execute(a).runtime_s / ex0.execute(a).runtime_s
        ratio_b = ex.execute(b).runtime_s / ex0.execute(b).runtime_s
        assert ratio_a != ratio_b

    def test_negative_noise_rejected(self, reg):
        with pytest.raises(SimulationError):
            SimulatedExecutor.default(reg, noise=-0.1)

    def test_execution_counter(self, executor, reg):
        before = executor.executions
        executor.execute(single_platform_plan(build_pipeline(2), "java", reg))
        assert executor.executions == before + 1
