"""Miscellaneous coverage: exceptions, lazy exports, robustness paths."""

import numpy as np
import pytest

import repro
from repro import exceptions as exc
from repro.core.enumerator import PriorityEnumerator
from repro.core.features import FeatureSchema
from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import synthetic_registry

from conftest import make_linear_cost


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "PlanError",
            "CycleError",
            "ArityError",
            "UnknownOperatorError",
            "PlatformError",
            "EnumerationError",
            "ScopeError",
            "VectorizationError",
            "ModelError",
            "NotFittedError",
            "SimulationError",
            "ExecutionFailure",
            "GenerationError",
        ):
            klass = getattr(exc, name)
            assert issubclass(klass, exc.ReproError), name

    def test_specializations(self):
        assert issubclass(exc.CycleError, exc.PlanError)
        assert issubclass(exc.NotFittedError, exc.ModelError)
        assert issubclass(exc.ScopeError, exc.EnumerationError)
        assert issubclass(exc.ExecutionFailure, exc.SimulationError)

    def test_execution_failure_carries_context(self):
        failure = exc.ExecutionFailure("oom", runtime=12.5)
        assert failure.reason == "oom"
        assert failure.runtime == 12.5
        assert "oom" in str(failure)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_lazy_exports(self):
        assert repro.SimulatedExecutor.__name__ == "SimulatedExecutor"
        assert repro.RuntimeModel.__name__ == "RuntimeModel"
        assert repro.TrainingDataGenerator.__name__ == "TrainingDataGenerator"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestDisconnectedPlans:
    def build_two_components(self):
        """Two independent source→map→sink chains in one plan."""
        plan = LogicalPlan("two")
        for tag in ("a", "b"):
            src = plan.add(
                operator("TextFileSource", f"src-{tag}"),
                dataset=DatasetProfile(tag, 1e5, 100.0),
            )
            mid = plan.add(operator("Map", f"map-{tag}"))
            sink = plan.add(operator("CollectionSink", f"sink-{tag}"))
            plan.chain(src, mid, sink)
        plan.validate()
        return plan

    def test_enumerator_handles_disconnected_components(self):
        reg = synthetic_registry(2)
        schema = FeatureSchema(reg)
        cost = make_linear_cost(schema, seed=1)
        plan = self.build_two_components()
        result = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(plan)
        assert set(result.execution_plan.assignment) == set(plan.operators)

    def test_disconnected_optimum_matches_exhaustive(self):
        reg = synthetic_registry(2)
        schema = FeatureSchema(reg)
        cost = make_linear_cost(schema, seed=2)
        plan = self.build_two_components()
        pruned = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(plan)
        full = PriorityEnumerator(
            reg, cost, pruning=False, schema=schema
        ).enumerate_plan(plan)
        assert pruned.predicted_cost == pytest.approx(full.predicted_cost)


class TestSchemaAcrossRegistries:
    def test_feature_count_formula(self):
        for k in (1, 2, 3, 5):
            schema = FeatureSchema(synthetic_registry(k))
            kinds = len(schema.kind_names)
            convs = len(schema.conversion_kinds)
            expected = 4 + kinds * (2 * k + 8) + convs * (k + 2) + 6 * k + 2
            assert schema.n_features == expected

    def test_vectors_are_not_transferable_between_ks(self):
        small = FeatureSchema(synthetic_registry(2))
        large = FeatureSchema(synthetic_registry(3))
        assert small.n_features != large.n_features
