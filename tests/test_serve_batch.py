"""The batch service: concurrency faults, timeouts, fallback, cache bound.

The concurrency suite of ISSUE 4: a worker raising must fail one job,
not the batch; a worker *dying* must fail the unfinished jobs but leave
the service usable; a slow job must time out individually; an
unpicklable factory must degrade to serial execution; and the LRU cache
must stay bounded under interleaved access patterns.

Extended for ISSUE 6 with the warm-worker suite: workers initialize
once and are reused across batches, identical in-flight fingerprints
coalesce onto one computation, worker sizing is CPU-affinity aware, and
report metrics (rates, latency percentiles) are guarded against
sub-resolution wall times.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ReproError
from repro.obs import Tracer, use_tracer
from repro.rheem.platforms import synthetic_registry
from repro.serve import (
    BatchJob,
    BatchOptimizationService,
    PlanCache,
    available_cpus,
)
from repro.serve.batch import _WALL_FLOOR_S, BatchReport, JobOutcome
from repro.serve.testing import (
    count_markers,
    counting_robopt_factory,
    crashing_robopt_factory,
    flaky_robopt_factory,
    linear_robopt_factory,
    sleepy_robopt_factory,
)

from conftest import build_join_plan, build_pipeline

N_PLATFORMS = 2


def _named(plan, name):
    plan.name = name
    return plan


@pytest.fixture
def registry():
    return synthetic_registry(N_PLATFORMS)


class TestWorkerFailure:
    def test_raising_worker_fails_one_job_not_the_pool(self, registry):
        factory = flaky_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=2)
        jobs = [
            BatchJob("ok1", build_pipeline(2)),
            BatchJob("bad", _named(build_pipeline(3), "poison-pill")),
            BatchJob("ok2", build_pipeline(4)),
            BatchJob("ok3", build_join_plan()),
        ]
        report = service.optimize_batch(jobs)
        assert report.mode == "pool"
        assert report.n_failed == 1
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["bad"].ok
        assert "injected failure" in by_id["bad"].error
        for job_id in ("ok1", "ok2", "ok3"):
            assert by_id[job_id].ok, by_id[job_id].error
            assert by_id[job_id].result is not None

    def test_raising_worker_fails_one_job_serially_too(self, registry):
        factory = flaky_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(
            [
                BatchJob("bad", _named(build_pipeline(2), "poison")),
                BatchJob("ok", build_pipeline(3)),
            ]
        )
        assert report.mode == "serial"
        assert [o.ok for o in report.outcomes] == [False, True]

    def test_dead_worker_breaks_pool_but_not_service(self, registry):
        """``os._exit`` in a worker breaks the whole pool: the unfinished
        jobs get error outcomes, the call returns, and the *next* batch
        (a fresh pool) works normally."""
        factory = crashing_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=2)
        report = service.optimize_batch(
            [
                BatchJob("boom", _named(build_pipeline(2), "crash-me")),
                BatchJob("ok1", build_pipeline(3)),
                BatchJob("ok2", build_pipeline(4)),
            ]
        )
        assert report.mode == "pool"
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["boom"].ok
        assert "BrokenProcessPool" in by_id["boom"].error
        # The service itself survives: a fresh batch on a fresh pool runs.
        healthy = service.optimize_batch([BatchJob("after", build_pipeline(2))])
        assert healthy.n_failed == 0


class TestTimeout:
    def test_slow_job_times_out_individually(self, registry):
        factory = sleepy_robopt_factory(platforms=N_PLATFORMS, sleep_s=6.0)
        service = BatchOptimizationService(
            factory, registry, workers=2, timeout_s=2.0
        )
        jobs = [
            BatchJob("slow", _named(build_pipeline(2), "sleep-forever")),
            BatchJob("fast1", build_pipeline(3)),
            BatchJob("fast2", build_pipeline(4)),
        ]
        tracer = Tracer()
        with use_tracer(tracer):
            report = service.optimize_batch(jobs)
        assert report.mode == "pool"
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["slow"].ok
        assert "timeout" in by_id["slow"].error
        assert by_id["fast1"].ok and by_id["fast2"].ok
        assert tracer.counters.get("serve.jobs_timed_out") == 1
        # The batch returned without waiting out the 6s sleep.
        assert report.wall_s < 5.0

    def test_timeout_validation(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        with pytest.raises(ReproError):
            BatchOptimizationService(factory, registry, timeout_s=0.0)
        with pytest.raises(ReproError):
            BatchOptimizationService(factory, registry, workers=-1)


class TestSerialFallback:
    def test_unpicklable_factory_degrades_to_serial(self, registry):
        from repro.core.features import FeatureSchema
        from repro.core.optimizer import Robopt
        from repro.serve.testing import LinearRuntimeModel

        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=0)
        # A lambda does not pickle: pool mode is impossible.
        factory = lambda: Robopt(registry, model, schema=schema)  # noqa: E731
        service = BatchOptimizationService(factory, registry, workers=4)
        tracer = Tracer()
        with use_tracer(tracer):
            report = service.optimize_batch(
                [BatchJob(f"j{i}", build_pipeline(2 + i)) for i in range(3)]
            )
        assert report.mode == "serial"
        assert report.n_failed == 0
        fallbacks = [s for s in tracer.spans if s.name == "serve.pool.fallback"]
        assert len(fallbacks) == 1
        assert "unpicklable" in fallbacks[0].attrs["reason"]

    def test_workers_zero_and_one_run_serially(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        for workers in (0, 1):
            service = BatchOptimizationService(factory, registry, workers=workers)
            report = service.optimize_batch([BatchJob("j", build_pipeline(2))])
            assert report.mode == "serial"
            assert report.n_failed == 0


class TestCacheUnderInterleaving:
    def test_lru_stays_bounded_under_interleaved_batches(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        cache = PlanCache(max_entries=4)
        service = BatchOptimizationService(factory, registry, workers=0, cache=cache)
        # Interleave 8 distinct structures with repeats, across batches.
        sizes = [2, 3, 4, 5, 6, 7, 8, 9]
        for round_no in range(3):
            order = sizes if round_no % 2 == 0 else list(reversed(sizes))
            jobs = [
                BatchJob(f"r{round_no}s{n}", build_pipeline(n)) for n in order
            ]
            report = service.optimize_batch(jobs)
            assert report.n_failed == 0
            assert len(cache) <= 4
        assert len(cache) == 4
        stats = cache.stats
        assert stats.evictions > 0
        assert stats.lookups == stats.hits + stats.misses

    def test_within_batch_duplicates_hit_the_representative(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        cache = PlanCache(max_entries=16)
        service = BatchOptimizationService(factory, registry, workers=0, cache=cache)
        plan = build_pipeline(3)
        report = service.optimize_batch(
            [BatchJob(f"dup{i}", plan.clone()) for i in range(5)]
        )
        assert report.n_failed == 0
        assert report.cache_misses == 1  # one representative optimization
        assert report.cache_hits == 4  # four batch-local hits
        assert sum(1 for o in report.outcomes if o.cached) == 4
        runtimes = {o.result.predicted_runtime for o in report.outcomes}
        assert len(runtimes) == 1

    def test_no_dedup_without_cache(self, registry):
        """Without a cache, fingerprint equivalence is not opted into:
        every job is optimized individually."""
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        plan = build_pipeline(3)
        report = service.optimize_batch(
            [BatchJob(f"dup{i}", plan.clone()) for i in range(3)]
        )
        assert report.cache_hits == 0
        assert all(not o.cached for o in report.outcomes)


class TestJobsAndReport:
    def test_bare_plans_and_duplicate_ids_normalize(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        a, b = build_pipeline(2), build_pipeline(3)
        b.name = a.name  # force an id collision
        report = service.optimize_batch([a, b])
        assert report.n_failed == 0
        ids = [o.job_id for o in report.outcomes]
        assert len(set(ids)) == 2

    def test_size_bytes_rescales_the_job(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        plan = build_pipeline(3)
        small = BatchJob("small", plan, size_bytes=1e6)
        large = BatchJob("large", plan, size_bytes=64e9)
        report = service.optimize_batch([small, large])
        assert report.n_failed == 0
        runtimes = {o.job_id: o.result.predicted_runtime for o in report.outcomes}
        assert runtimes["small"] < runtimes["large"]
        # The caller's plan object is never mutated by sizing.
        assert plan.datasets[0].cardinality == pytest.approx(1e6)

    def test_tags_travel_into_outcomes(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(
            [BatchJob("j", build_pipeline(2), tags={"tenant": "alice"})]
        )
        assert report.outcomes[0].tags == {"tenant": "alice"}

    def test_metrics_and_aggregate_stats(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        cache = PlanCache(max_entries=8)
        service = BatchOptimizationService(factory, registry, workers=0, cache=cache)
        plan = build_pipeline(3)
        report = service.optimize_batch(
            [BatchJob("a", plan.clone()), BatchJob("b", plan.clone())]
        )
        metrics = report.metrics()
        for key in (
            "n_jobs",
            "n_ok",
            "n_failed",
            "wall_s",
            "plans_per_sec",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "workers",
        ):
            assert key in metrics
        assert metrics["cache_hit_rate"] == 0.5
        # Aggregate stats sum only the actually-optimized jobs.
        total = report.aggregate_stats()
        fresh = [o for o in report.outcomes if not o.cached]
        assert len(fresh) == 1
        assert total.total_vectors == fresh[0].result.stats.total_vectors

    def test_batch_emits_tracer_spans_and_counters(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        tracer = Tracer()
        with use_tracer(tracer):
            service.optimize_batch([BatchJob("j", build_pipeline(2))])
        names = {s.name for s in tracer.spans}
        assert {"serve.batch", "serve.cache.lookup", "serve.job"} <= names
        assert tracer.counters["serve.jobs"] == 1
        assert tracer.counters["serve.jobs_ok"] == 1


class TestWarmWorkers:
    """ISSUE 6: the pool is long-lived — workers initialize once, jobs
    stream over the work queue, and the pool survives across batches."""

    def test_workers_initialize_once_across_batches(self, registry, tmp_path):
        state = str(tmp_path / "probe")
        factory = counting_robopt_factory(platforms=N_PLATFORMS, state_dir=state)
        service = BatchOptimizationService(factory, registry, workers=2)
        try:
            first = service.optimize_batch(
                [BatchJob(f"a{n}", build_pipeline(n)) for n in (2, 3, 4, 5)]
            )
            assert first.mode == "pool"
            assert first.n_failed == 0
            second = service.optimize_batch(
                [BatchJob(f"b{n}", build_pipeline(n)) for n in (6, 7, 8, 9)]
            )
            assert second.mode == "pool"
            assert second.n_failed == 0
            # 8 jobs optimized, but at most one initialization per worker
            # — not one per batch, let alone one per job.
            assert count_markers(state, "opt") == 8
            assert count_markers(state, "init") <= 2
            # And the second batch reused the first batch's pool.
            assert service._pool.spawns == 1
        finally:
            service.close()

    def test_close_respawns_on_next_batch(self, registry, tmp_path):
        state = str(tmp_path / "probe")
        factory = counting_robopt_factory(platforms=N_PLATFORMS, state_dir=state)
        service = BatchOptimizationService(factory, registry, workers=2)
        try:
            assert service.optimize_batch([BatchJob("a", build_pipeline(2))]).n_failed == 0
            service.close()
            # The service stays usable after close: a fresh pool spawns.
            report = service.optimize_batch([BatchJob("b", build_pipeline(3))])
            assert report.n_failed == 0
            assert report.mode == "pool"
            assert service._pool.spawns == 2
        finally:
            service.close()

    def test_identical_jobs_enumerate_once_on_the_pool(self, registry, tmp_path):
        """N same-fingerprint jobs in one batch → exactly one worker-side
        optimization; the rest are batch-local hits."""
        state = str(tmp_path / "probe")
        factory = counting_robopt_factory(platforms=N_PLATFORMS, state_dir=state)
        cache = PlanCache(max_entries=8)
        service = BatchOptimizationService(factory, registry, workers=2, cache=cache)
        try:
            plan = build_pipeline(3)
            report = service.optimize_batch(
                [BatchJob(f"dup{i}", plan.clone()) for i in range(6)]
            )
            assert report.n_failed == 0
            assert report.mode == "pool"
            assert count_markers(state, "opt") == 1
            assert report.cache_hits == 5
            runtimes = {o.result.predicted_runtime for o in report.outcomes}
            assert len(runtimes) == 1
        finally:
            service.close()

    def test_inflight_fingerprint_coalescing_across_threads(
        self, registry, tmp_path
    ):
        """A fingerprint submitted while a sibling batch is computing it
        coalesces onto that computation instead of re-enumerating."""
        import time

        state = str(tmp_path / "probe")
        factory = counting_robopt_factory(
            platforms=N_PLATFORMS, state_dir=state, sleep_s=1.0
        )
        cache = PlanCache(max_entries=8)
        service = BatchOptimizationService(factory, registry, workers=2, cache=cache)
        plan = build_pipeline(3)
        reports = {}

        def run(key, delay):
            if delay:
                time.sleep(delay)
            reports[key] = service.optimize_batch([BatchJob(key, plan.clone())])

        try:
            threads = [
                threading.Thread(target=run, args=("first", 0.0)),
                threading.Thread(target=run, args=("second", 0.4)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert reports["first"].n_failed == 0
            assert reports["second"].n_failed == 0
            # One enumeration total: the late batch found the fingerprint
            # in flight and waited for the sibling's future.
            assert count_markers(state, "opt") == 1
            assert (
                reports["first"].n_coalesced + reports["second"].n_coalesced == 1
            )
            a = reports["first"].outcomes[0].result
            b = reports["second"].outcomes[0].result
            assert a.predicted_runtime == b.predicted_runtime
            assert a.execution_plan.assignment == b.execution_plan.assignment
        finally:
            service.close()

    def test_no_inflight_table_without_cache(self, registry, tmp_path):
        """In-flight dedupe shares the cache's equivalence semantics: with
        no cache configured, nothing is registered in flight."""
        state = str(tmp_path / "probe")
        factory = counting_robopt_factory(platforms=N_PLATFORMS, state_dir=state)
        service = BatchOptimizationService(factory, registry, workers=2)
        try:
            plan = build_pipeline(3)
            report = service.optimize_batch(
                [BatchJob(f"dup{i}", plan.clone()) for i in range(3)]
            )
            assert report.n_failed == 0
            assert report.n_coalesced == 0
            assert count_markers(state, "opt") == 3
            assert not service._inflight
        finally:
            service.close()


class TestWorkerSizing:
    """ISSUE 6 satellite: the default worker count respects the CPUs
    actually available (affinity / cgroup aware), with explicit override."""

    def test_auto_sizing_matches_cpu_affinity(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry)
        cpus = available_cpus()
        expected = cpus if cpus > 1 else 0
        assert service.workers_auto
        assert service.workers == expected
        try:
            report = service.optimize_batch([BatchJob("j", build_pipeline(2))])
        finally:
            service.close()
        assert report.mode == ("pool" if expected > 1 else "serial")
        assert report.workers_requested == expected

    def test_explicit_workers_override_auto_sizing(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=2)
        assert not service.workers_auto
        assert service.workers == 2  # honored even on a single-CPU box
        try:
            report = service.optimize_batch([BatchJob("j", build_pipeline(2))])
        finally:
            service.close()
        # Requested and effective workers both land in the metrics.
        metrics = report.metrics()
        assert metrics["workers_requested"] == 2
        assert metrics["workers"] == (2 if report.mode == "pool" else 0)


class TestReportNumbers:
    """ISSUE 6 satellite: rates and percentiles are finite, NaN-free and
    guarded against sub-resolution wall times."""

    @staticmethod
    def _ok(job_id, duration_s):
        return JobOutcome(job_id, ok=True, duration_s=duration_s)

    def test_plans_per_sec_guards_sub_resolution_walls(self):
        import math

        # The regression data point: 2 jobs in 3.5ms extrapolated to
        # 572 plans/s. The floored denominator bounds the rate instead.
        report = BatchReport(
            outcomes=[self._ok("a", 0.001), self._ok("b", 0.002)],
            wall_s=0.0035,
            mode="serial",
            workers=0,
        )
        assert math.isfinite(report.plans_per_sec)
        assert report.plans_per_sec <= 2 / _WALL_FLOOR_S

        zero_wall = BatchReport(
            outcomes=[self._ok("a", 0.0)], wall_s=0.0, mode="serial", workers=0
        )
        assert math.isfinite(zero_wall.plans_per_sec)
        assert zero_wall.plans_per_sec == 1 / _WALL_FLOOR_S

        empty = BatchReport(outcomes=[], wall_s=0.0, mode="serial", workers=0)
        assert empty.plans_per_sec == 0.0

        poisoned = BatchReport(
            outcomes=[self._ok("a", 0.1)],
            wall_s=float("nan"),
            mode="serial",
            workers=0,
        )
        assert math.isfinite(poisoned.plans_per_sec)

    def test_latency_percentiles_interpolate(self):
        outcomes = [self._ok(str(i), (i + 1) / 100.0) for i in range(100)]
        report = BatchReport(
            outcomes=outcomes, wall_s=1.0, mode="pool", workers=2,
            workers_requested=2,
        )
        tails = report.latency_percentiles()
        assert tails["p50"] == pytest.approx(0.505)
        assert tails["p95"] == pytest.approx(0.9505)
        assert tails["p99"] == pytest.approx(0.9901)
        metrics = report.metrics()
        assert metrics["latency_p50_s"] == tails["p50"]
        assert metrics["latency_p95_s"] == tails["p95"]
        assert metrics["latency_p99_s"] == tails["p99"]

    def test_percentiles_empty_and_failed_batches(self):
        import math

        empty = BatchReport(outcomes=[], wall_s=0.0, mode="serial", workers=0)
        assert empty.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        failed = BatchReport(
            outcomes=[JobOutcome("a", ok=False, error="boom")],
            wall_s=0.1,
            mode="serial",
            workers=0,
        )
        tails = failed.latency_percentiles()
        assert all(v == 0.0 for v in tails.values())
        assert all(
            math.isfinite(v)
            for v in failed.metrics().values()
            if isinstance(v, float)
        )

    def test_subfloor_durations_are_artifacts_not_samples(self):
        """The latency_p50_s: 0.0 regression: batch-local follower hits
        are published with an exact-zero duration (they never went
        through a timed path). They must not drag the percentiles to 0;
        with no measured job at all the tails are NaN ("no sample"),
        not a confident 0.0."""
        import math

        mixed = BatchReport(
            outcomes=[
                self._ok("lead", 0.04),
                self._ok("follower1", 0.0),
                self._ok("follower2", 0.0),
            ],
            wall_s=0.1,
            mode="serial",
            workers=0,
        )
        tails = mixed.latency_percentiles()
        assert tails["p50"] == tails["p95"] == tails["p99"] == 0.04

        unmeasured = BatchReport(
            outcomes=[self._ok("f1", 0.0), self._ok("f2", 0.0)],
            wall_s=0.1,
            mode="serial",
            workers=0,
        )
        tails = unmeasured.latency_percentiles()
        assert all(math.isnan(v) for v in tails.values())
        # ... and the NaN travels into metrics() as "no sample", where
        # the bench trajectory stores it as null rather than 0.0.
        assert math.isnan(unmeasured.metrics()["latency_p50_s"])


class _ScriptedExecutor:
    """Execution double: constant runtime, never fails."""

    class _Report:
        ok = True
        status = "success"
        detail = ""

        def __init__(self, runtime_s):
            self.runtime_s = runtime_s

    def __init__(self, runtime_s=12.0):
        self.runtime_s = runtime_s
        self.calls = 0

    def execute(self, xplan, timeout_s=3600.0):
        self.calls += 1
        return self._Report(self.runtime_s)


class TestFeedbackWiring:
    """ISSUE 10 tentpole: the service feeds executed outcomes to the
    feedback controller and swaps retrained models in atomically."""

    def _controller(self, registry, **kwargs):
        from repro.core.features import FeatureSchema
        from repro.ml import DriftMonitor, FeedbackLoop
        from repro.serve.feedback import FeedbackController

        kwargs.setdefault("retrain_after", 0)  # drift-only by default
        kwargs.setdefault("min_observations", 2)
        kwargs.setdefault("drift", DriftMonitor(min_samples=2))
        loop = FeedbackLoop(FeatureSchema(registry), n_estimators=3, max_depth=6)
        return FeedbackController(loop, _ScriptedExecutor(), **kwargs)

    def test_fresh_results_are_observed_cached_are_not(self, registry):
        # min_observations high enough that no retrain (and hence no
        # cache-clearing install) can fire during this test.
        ctrl = self._controller(registry, min_observations=100)
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS),
            registry,
            workers=0,
            cache=PlanCache(),
            feedback=ctrl,
        )
        try:
            jobs = [_named(build_pipeline(3), "a"), _named(build_pipeline(4), "b")]
            service.optimize_batch(jobs)
            assert ctrl.executions == 2
            assert ctrl.loop.n_observations == 2
            # The same fingerprints again: served from cache, re-executing
            # nothing — one popular plan must not flood the log.
            report = service.optimize_batch(
                [_named(build_pipeline(3), "a"), _named(build_pipeline(4), "b")]
            )
            assert report.cache_hits == 2
            assert ctrl.executions == 2
            assert ctrl.loop.n_observations == 2
        finally:
            service.close()

    def test_feedback_off_means_no_controller_calls(self, registry):
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS), registry, workers=0
        )
        try:
            service.optimize_batch([build_pipeline(3)])
            assert service.feedback_stats() == {}
        finally:
            service.close()

    def test_install_model_swaps_and_invalidates(self, registry, tmp_path):
        from repro.serve.testing import LinearRuntimeModel
        from repro.core.features import FeatureSchema

        model_path = tmp_path / "model.pkl"
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS),
            registry,
            workers=0,
            cache=PlanCache(),
            model_path=model_path,
        )
        try:
            service.optimize_batch([_named(build_pipeline(3), "a")])
            assert len(service.cache) == 1
            schema = FeatureSchema(registry)
            fresh = LinearRuntimeModel(schema.n_features, seed=9)
            fresh.save = lambda path: __import__("pathlib").Path(path).write_bytes(
                b"model-bytes"
            )
            tracer = Tracer()
            with use_tracer(tracer):
                service.install_model(fresh)
            assert service.model_generation == 1
            assert len(service.cache) == 0  # old-model costs evicted
            assert model_path.read_bytes() == b"model-bytes"  # pool workers reload
            assert not model_path.with_name("model.pkl.tmp").exists()
            assert tracer.counters["serve.model_swaps"] == 1
            # The swapped-in model actually prices the next batch.
            report = service.optimize_batch([_named(build_pipeline(3), "a")])
            assert report.n_ok == 1 and report.cache_hits == 0
        finally:
            service.close()

    def test_drift_triggers_retrain_and_generation_bump(self, registry):
        """The closed loop end to end: mispredictions accumulate, drift
        trips, the service retrains and installs — generation moves."""
        from repro.ml import DriftMonitor

        # q-error is >= 1.0 by construction, so this monitor flags any
        # two observations as drifted — the trigger is deterministic.
        ctrl = self._controller(
            registry,
            drift=DriftMonitor(
                min_samples=2, warn_threshold=1.0, drift_threshold=1.0
            ),
            min_observations=2,
        )
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS),
            registry,
            workers=0,
            feedback=ctrl,
        )
        try:
            # The controller's install hook was auto-wired to the service.
            assert ctrl.install == service.install_model
            service.optimize_batch(
                [_named(build_pipeline(3), "a"), _named(build_pipeline(4), "b")]
            )
            ctrl.join()
            assert ctrl.loop.n_retrains >= 1
            assert service.model_generation >= 1
            stats = service.feedback_stats()
            assert stats["retrains"] >= 1
            assert stats["model_generation"] == service.model_generation
        finally:
            service.close()
