"""The batch service: concurrency faults, timeouts, fallback, cache bound.

The concurrency suite of ISSUE 4: a worker raising must fail one job,
not the batch; a worker *dying* must fail the unfinished jobs but leave
the service usable; a slow job must time out individually; an
unpicklable factory must degrade to serial execution; and the LRU cache
must stay bounded under interleaved access patterns.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.obs import Tracer, use_tracer
from repro.rheem.platforms import synthetic_registry
from repro.serve import BatchJob, BatchOptimizationService, PlanCache
from repro.serve.testing import (
    crashing_robopt_factory,
    flaky_robopt_factory,
    linear_robopt_factory,
    sleepy_robopt_factory,
)

from conftest import build_join_plan, build_pipeline

N_PLATFORMS = 2


def _named(plan, name):
    plan.name = name
    return plan


@pytest.fixture
def registry():
    return synthetic_registry(N_PLATFORMS)


class TestWorkerFailure:
    def test_raising_worker_fails_one_job_not_the_pool(self, registry):
        factory = flaky_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=2)
        jobs = [
            BatchJob("ok1", build_pipeline(2)),
            BatchJob("bad", _named(build_pipeline(3), "poison-pill")),
            BatchJob("ok2", build_pipeline(4)),
            BatchJob("ok3", build_join_plan()),
        ]
        report = service.optimize_batch(jobs)
        assert report.mode == "pool"
        assert report.n_failed == 1
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["bad"].ok
        assert "injected failure" in by_id["bad"].error
        for job_id in ("ok1", "ok2", "ok3"):
            assert by_id[job_id].ok, by_id[job_id].error
            assert by_id[job_id].result is not None

    def test_raising_worker_fails_one_job_serially_too(self, registry):
        factory = flaky_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(
            [
                BatchJob("bad", _named(build_pipeline(2), "poison")),
                BatchJob("ok", build_pipeline(3)),
            ]
        )
        assert report.mode == "serial"
        assert [o.ok for o in report.outcomes] == [False, True]

    def test_dead_worker_breaks_pool_but_not_service(self, registry):
        """``os._exit`` in a worker breaks the whole pool: the unfinished
        jobs get error outcomes, the call returns, and the *next* batch
        (a fresh pool) works normally."""
        factory = crashing_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=2)
        report = service.optimize_batch(
            [
                BatchJob("boom", _named(build_pipeline(2), "crash-me")),
                BatchJob("ok1", build_pipeline(3)),
                BatchJob("ok2", build_pipeline(4)),
            ]
        )
        assert report.mode == "pool"
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["boom"].ok
        assert "BrokenProcessPool" in by_id["boom"].error
        # The service itself survives: a fresh batch on a fresh pool runs.
        healthy = service.optimize_batch([BatchJob("after", build_pipeline(2))])
        assert healthy.n_failed == 0


class TestTimeout:
    def test_slow_job_times_out_individually(self, registry):
        factory = sleepy_robopt_factory(platforms=N_PLATFORMS, sleep_s=6.0)
        service = BatchOptimizationService(
            factory, registry, workers=2, timeout_s=2.0
        )
        jobs = [
            BatchJob("slow", _named(build_pipeline(2), "sleep-forever")),
            BatchJob("fast1", build_pipeline(3)),
            BatchJob("fast2", build_pipeline(4)),
        ]
        tracer = Tracer()
        with use_tracer(tracer):
            report = service.optimize_batch(jobs)
        assert report.mode == "pool"
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["slow"].ok
        assert "timeout" in by_id["slow"].error
        assert by_id["fast1"].ok and by_id["fast2"].ok
        assert tracer.counters.get("serve.jobs_timed_out") == 1
        # The batch returned without waiting out the 6s sleep.
        assert report.wall_s < 5.0

    def test_timeout_validation(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        with pytest.raises(ReproError):
            BatchOptimizationService(factory, registry, timeout_s=0.0)
        with pytest.raises(ReproError):
            BatchOptimizationService(factory, registry, workers=-1)


class TestSerialFallback:
    def test_unpicklable_factory_degrades_to_serial(self, registry):
        from repro.core.features import FeatureSchema
        from repro.core.optimizer import Robopt
        from repro.serve.testing import LinearRuntimeModel

        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=0)
        # A lambda does not pickle: pool mode is impossible.
        factory = lambda: Robopt(registry, model, schema=schema)  # noqa: E731
        service = BatchOptimizationService(factory, registry, workers=4)
        tracer = Tracer()
        with use_tracer(tracer):
            report = service.optimize_batch(
                [BatchJob(f"j{i}", build_pipeline(2 + i)) for i in range(3)]
            )
        assert report.mode == "serial"
        assert report.n_failed == 0
        fallbacks = [s for s in tracer.spans if s.name == "serve.pool.fallback"]
        assert len(fallbacks) == 1
        assert "unpicklable" in fallbacks[0].attrs["reason"]

    def test_workers_zero_and_one_run_serially(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        for workers in (0, 1):
            service = BatchOptimizationService(factory, registry, workers=workers)
            report = service.optimize_batch([BatchJob("j", build_pipeline(2))])
            assert report.mode == "serial"
            assert report.n_failed == 0


class TestCacheUnderInterleaving:
    def test_lru_stays_bounded_under_interleaved_batches(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        cache = PlanCache(max_entries=4)
        service = BatchOptimizationService(factory, registry, workers=0, cache=cache)
        # Interleave 8 distinct structures with repeats, across batches.
        sizes = [2, 3, 4, 5, 6, 7, 8, 9]
        for round_no in range(3):
            order = sizes if round_no % 2 == 0 else list(reversed(sizes))
            jobs = [
                BatchJob(f"r{round_no}s{n}", build_pipeline(n)) for n in order
            ]
            report = service.optimize_batch(jobs)
            assert report.n_failed == 0
            assert len(cache) <= 4
        assert len(cache) == 4
        stats = cache.stats
        assert stats.evictions > 0
        assert stats.lookups == stats.hits + stats.misses

    def test_within_batch_duplicates_hit_the_representative(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        cache = PlanCache(max_entries=16)
        service = BatchOptimizationService(factory, registry, workers=0, cache=cache)
        plan = build_pipeline(3)
        report = service.optimize_batch(
            [BatchJob(f"dup{i}", plan.clone()) for i in range(5)]
        )
        assert report.n_failed == 0
        assert report.cache_misses == 1  # one representative optimization
        assert report.cache_hits == 4  # four batch-local hits
        assert sum(1 for o in report.outcomes if o.cached) == 4
        runtimes = {o.result.predicted_runtime for o in report.outcomes}
        assert len(runtimes) == 1

    def test_no_dedup_without_cache(self, registry):
        """Without a cache, fingerprint equivalence is not opted into:
        every job is optimized individually."""
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        plan = build_pipeline(3)
        report = service.optimize_batch(
            [BatchJob(f"dup{i}", plan.clone()) for i in range(3)]
        )
        assert report.cache_hits == 0
        assert all(not o.cached for o in report.outcomes)


class TestJobsAndReport:
    def test_bare_plans_and_duplicate_ids_normalize(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        a, b = build_pipeline(2), build_pipeline(3)
        b.name = a.name  # force an id collision
        report = service.optimize_batch([a, b])
        assert report.n_failed == 0
        ids = [o.job_id for o in report.outcomes]
        assert len(set(ids)) == 2

    def test_size_bytes_rescales_the_job(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        plan = build_pipeline(3)
        small = BatchJob("small", plan, size_bytes=1e6)
        large = BatchJob("large", plan, size_bytes=64e9)
        report = service.optimize_batch([small, large])
        assert report.n_failed == 0
        runtimes = {o.job_id: o.result.predicted_runtime for o in report.outcomes}
        assert runtimes["small"] < runtimes["large"]
        # The caller's plan object is never mutated by sizing.
        assert plan.datasets[0].cardinality == pytest.approx(1e6)

    def test_tags_travel_into_outcomes(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(
            [BatchJob("j", build_pipeline(2), tags={"tenant": "alice"})]
        )
        assert report.outcomes[0].tags == {"tenant": "alice"}

    def test_metrics_and_aggregate_stats(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        cache = PlanCache(max_entries=8)
        service = BatchOptimizationService(factory, registry, workers=0, cache=cache)
        plan = build_pipeline(3)
        report = service.optimize_batch(
            [BatchJob("a", plan.clone()), BatchJob("b", plan.clone())]
        )
        metrics = report.metrics()
        for key in (
            "n_jobs",
            "n_ok",
            "n_failed",
            "wall_s",
            "plans_per_sec",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "workers",
        ):
            assert key in metrics
        assert metrics["cache_hit_rate"] == 0.5
        # Aggregate stats sum only the actually-optimized jobs.
        total = report.aggregate_stats()
        fresh = [o for o in report.outcomes if not o.cached]
        assert len(fresh) == 1
        assert total.total_vectors == fresh[0].result.stats.total_vectors

    def test_batch_emits_tracer_spans_and_counters(self, registry):
        factory = linear_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(factory, registry, workers=0)
        tracer = Tracer()
        with use_tracer(tracer):
            service.optimize_batch([BatchJob("j", build_pipeline(2))])
        names = {s.name for s in tracer.spans}
        assert {"serve.batch", "serve.cache.lookup", "serve.job"} <= names
        assert tracer.counters["serve.jobs"] == 1
        assert tracer.counters["serve.jobs_ok"] == 1
