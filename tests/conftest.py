"""Shared fixtures for the test suite.

Fixtures keep to the cheap end: synthetic registries, small plans, a
deterministic decomposable cost function (losslessness of the boundary
pruning is only guaranteed for cost models that decompose over merges —
linear functions of the plan vector do), and one tiny trained model for
the integration tests (session-scoped).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import FeatureSchema
from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import default_registry, synthetic_registry


@pytest.fixture
def reg2():
    return synthetic_registry(2)


@pytest.fixture
def reg3():
    return synthetic_registry(3)


@pytest.fixture
def real_registry():
    return default_registry(("java", "spark", "flink"))


@pytest.fixture
def dataset():
    return DatasetProfile("d", cardinality=1e6, tuple_size=100.0)


def build_pipeline(n_middle: int = 3, cardinality: float = 1e6) -> LogicalPlan:
    """source -> n_middle unary ops -> sink."""
    plan = LogicalPlan(f"pipe{n_middle + 2}")
    ops = [
        plan.add(
            operator("TextFileSource"),
            dataset=DatasetProfile("d", cardinality, 100.0),
        )
    ]
    kinds = ("Filter", "Map", "ReduceBy", "Sort", "Distinct", "FlatMap")
    for i in range(n_middle):
        ops.append(plan.add(operator(kinds[i % len(kinds)])))
    ops.append(plan.add(operator("CollectionSink")))
    plan.chain(*ops)
    plan.validate()
    return plan


def build_join_plan(cardinality: float = 1e6) -> LogicalPlan:
    """Two source branches joined, then reduced and sunk (7 operators)."""
    plan = LogicalPlan("join7")
    s1 = plan.add(operator("TextFileSource"), dataset=DatasetProfile("a", cardinality, 100.0))
    f1 = plan.add(operator("Filter"))
    s2 = plan.add(operator("TextFileSource"), dataset=DatasetProfile("b", cardinality / 5, 50.0))
    m2 = plan.add(operator("Map"))
    j = plan.add(operator("Join"))
    r = plan.add(operator("ReduceBy"))
    k = plan.add(operator("CollectionSink"))
    plan.chain(s1, f1, j)
    plan.chain(s2, m2, j)
    plan.chain(j, r, k)
    plan.validate()
    return plan


def build_loop_plan(iterations: int = 10, cardinality: float = 1e5) -> LogicalPlan:
    """A pipeline with a loop over its middle operators."""
    plan = LogicalPlan("loop6")
    src = plan.add(operator("TextFileSource"), dataset=DatasetProfile("d", cardinality, 100.0))
    a = plan.add(operator("Map"))
    b = plan.add(operator("ReduceBy", fixed_output_cardinality=64))
    c = plan.add(operator("Map"))
    sink = plan.add(operator("CollectionSink"))
    plan.chain(src, a, b, c, sink)
    plan.add_loop([a, b, c], iterations=iterations)
    plan.validate()
    return plan


@pytest.fixture
def pipeline_plan():
    return build_pipeline()


@pytest.fixture
def join_plan():
    return build_join_plan()


@pytest.fixture
def loop_plan():
    return build_loop_plan()


def make_linear_cost(schema: FeatureSchema, seed: int = 0):
    """A deterministic, merge-decomposable cost oracle.

    Linear in the plan vector with non-negative weights: cost(merge(a, b))
    = cost(a) + cost(b) + conversion terms + scope-static terms, so the
    boundary pruning is provably lossless against it.
    """
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.0, 1.0, schema.n_features)

    def cost(enumeration):
        return enumeration.features @ weights

    return cost


@pytest.fixture
def linear_cost_factory():
    return make_linear_cost


@pytest.fixture(scope="session")
def tiny_context():
    """A small trained model + executor for integration tests.

    Session-scoped: one TDGEN run (~1.5k points) and one small forest.
    """
    from repro.ml.model import RuntimeModel
    from repro.simulator.executor import SimulatedExecutor
    from repro.tdgen.generator import TrainingDataGenerator

    registry = default_registry(("java", "spark", "flink"))
    schema = FeatureSchema(registry)
    executor = SimulatedExecutor.default(registry)
    tdgen = TrainingDataGenerator(registry, executor, seed=7, schema=schema)
    dataset = tdgen.generate(
        1500,
        shapes=("pipeline", "juncture", "loop", "ml_loop", "sgd_loop"),
        assignments_per_plan=4,
    )
    model = RuntimeModel.train(
        dataset, "random_forest", seed=7, n_estimators=12, max_depth=14
    )
    return {
        "registry": registry,
        "schema": schema,
        "executor": executor,
        "model": model,
        "dataset": dataset,
    }
