"""End-to-end integration tests: TDGEN → model → Robopt → simulator.

These use the session-scoped ``tiny_context`` fixture (a small but real
trained model) and exercise the full paper pipeline on the actual
workloads — the miniature version of the §VII evaluation.
"""

import numpy as np
import pytest

from repro.core.optimizer import Robopt
from repro.baselines.rheem_ml import RheemMLOptimizer
from repro.rheem.datasets import GB, MB
from repro.rheem.execution_plan import single_platform_plan
from repro.workloads import kmeans, sgd, wordcount


class TestEndToEnd:
    def test_model_orders_plans_reasonably(self, tiny_context):
        """The trained model must rank real workload plans usefully."""
        ctx = tiny_context
        truths, preds = [], []
        for size in (30 * MB, 3 * GB):
            plan = wordcount.plan(size)
            for platform in ctx["registry"].names:
                xp = single_platform_plan(plan, platform, ctx["registry"])
                report = ctx["executor"].execute(xp)
                truth = report.runtime_s if report.ok else 7200.0
                truths.append(truth)
                preds.append(
                    ctx["model"].predict_one(
                        ctx["schema"].encode_execution_plan(xp)
                    )
                )
        from repro.ml.metrics import spearman

        assert spearman(np.array(truths), np.array(preds)) > 0.5

    def test_robopt_produces_valid_executable_plan(self, tiny_context):
        ctx = tiny_context
        robopt = Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"])
        result = robopt.optimize(wordcount.plan(300 * MB))
        assert set(result.execution_plan.assignment) == set(
            result.execution_plan.plan.operators
        )
        report = ctx["executor"].execute(result.execution_plan)
        assert report.status in ("ok", "timeout")
        assert result.predicted_runtime >= 0
        assert result.latency_s > 0

    def test_robopt_avoids_catastrophic_plans(self, tiny_context):
        """Even a small model keeps the chosen plan within a sane factor
        of the best single platform (the paper's headline behaviour)."""
        ctx = tiny_context
        robopt = Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"])
        plan = wordcount.plan(3 * GB)
        chosen = robopt.optimize(plan).execution_plan
        chosen_runtime = ctx["executor"].execute(chosen).runtime_s
        best_single = min(
            ctx["executor"].execute(
                single_platform_plan(plan, p, ctx["registry"])
            ).runtime_s
            for p in ("spark", "flink")
        )
        assert chosen_runtime <= 10 * best_single

    def test_robopt_and_rheem_ml_agree_on_plan_quality(self, tiny_context):
        """Same model, same pruning: both optimizers find the same optimum
        (they differ in representation, not in search result)."""
        ctx = tiny_context
        plan = kmeans.plan(36 * MB, n_centroids=10, iterations=5)
        vec = Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"]).optimize(plan)
        obj = RheemMLOptimizer(
            ctx["registry"], ctx["model"], schema=ctx["schema"]
        ).optimize(plan)
        assert obj.predicted_runtime == pytest.approx(vec.predicted_runtime, rel=1e-6)
        assert obj.execution_plan == vec.execution_plan

    def test_vectorized_is_faster_than_object_based(self, tiny_context):
        """Fig. 1 in miniature: the vector-based enumeration beats the
        object-based Rheem-ML on wall-clock for a mid-sized plan."""
        ctx = tiny_context
        from repro.workloads import synthetic

        plan = synthetic.pipeline_plan(20)
        robopt = Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"])
        rheem_ml = RheemMLOptimizer(
            ctx["registry"], ctx["model"], schema=ctx["schema"]
        )
        t_vec = robopt.optimize(plan).stats.latency_s
        t_obj = rheem_ml.optimize(plan).stats.latency_s
        assert t_vec < t_obj

    def test_iterative_workload_multi_platform_opportunity(self, tiny_context):
        """SGD: the optimizer may exploit multiple platforms; whatever it
        picks must beat the worst single platform by a wide margin."""
        ctx = tiny_context
        plan = sgd.plan(2 * GB, iterations=100)
        robopt = Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"])
        chosen = robopt.optimize(plan).execution_plan
        chosen_runtime = ctx["executor"].execute(chosen).runtime_s
        worst = max(
            ctx["executor"].execute(
                single_platform_plan(plan, p, ctx["registry"])
            ).runtime_s
            for p in ("spark", "flink")
        )
        assert chosen_runtime < worst

    def test_dataset_statistics(self, tiny_context):
        dataset = tiny_context["dataset"]
        assert len(dataset) == 1500
        assert np.all(dataset.y >= 0)
        statuses = {m["status"] for m in dataset.meta}
        assert {"ok", "interpolated"} <= statuses
