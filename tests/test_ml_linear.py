"""Tests for linear models and non-negative least squares."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.linear import (
    LinearRegression,
    RidgeRegression,
    nonnegative_least_squares,
)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


class TestRidge:
    def test_recovers_linear_relationship(self, rng):
        X = rng.normal(size=(200, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-3)

    def test_handles_constant_columns(self, rng):
        X = np.hstack([rng.normal(size=(100, 2)), np.ones((100, 1))])
        y = X[:, 0]
        model = RidgeRegression().fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_regularization_shrinks_coefficients(self, rng):
        X = rng.normal(size=(100, 3))
        y = X @ np.array([5.0, 5.0, 5.0])
        weak = RidgeRegression(alpha=1e-6).fit(X, y)
        strong = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_no_intercept(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = RidgeRegression(alpha=1e-6, fit_intercept=False).fit(X, y)
        assert model.y_mean_ == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            RidgeRegression(alpha=-1.0)
        with pytest.raises(ModelError):
            RidgeRegression().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(NotFittedError):
            RidgeRegression().predict(np.zeros((2, 2)))

    def test_linear_regression_alias(self, rng):
        X = rng.normal(size=(50, 2))
        y = X[:, 0] * 3
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-3)


class TestNNLS:
    def test_recovers_nonnegative_solution(self, rng):
        X = rng.uniform(size=(300, 4))
        w_true = np.array([1.0, 0.0, 2.5, 0.3])
        y = X @ w_true
        w = nonnegative_least_squares(X, y)
        assert np.allclose(w, w_true, atol=1e-6)

    def test_never_negative(self, rng):
        X = rng.uniform(size=(100, 5))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0, 3.0])  # unreachable target
        w = nonnegative_least_squares(X, y)
        assert np.all(w >= 0)

    def test_zero_columns_get_zero_weight(self, rng):
        X = rng.uniform(size=(50, 3))
        X[:, 1] = 0.0
        y = X[:, 0]
        w = nonnegative_least_squares(X, y)
        assert w[1] == 0.0

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            nonnegative_least_squares(np.zeros((5, 2)), np.zeros(4))
