"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("30MB") == 30 * 2 ** 20
        assert parse_size("6GB") == 6 * 2 ** 30
        assert parse_size("1TB") == 2 ** 40
        assert parse_size("2.5 gb") == 2.5 * 2 ** 30

    def test_plain_bytes(self):
        assert parse_size("1024") == 1024.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("many")


class TestCommands:
    def test_workloads_lists_table2(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("WordCount", "SGD", "CrocoPR", "TPC-H Q3"):
            assert name in out

    def test_simulate_all_platforms(self, capsys):
        rc = main(["simulate", "--workload", "wordcount", "--size", "3GB"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "java" in out and "oom" in out  # 3GB OOMs on java
        assert "spark" in out and "flink" in out

    def test_simulate_single_platform(self, capsys):
        rc = main(
            ["simulate", "--workload", "tpchq1", "--size", "1GB", "--platform", "flink"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "flink" in out and "java" not in out

    def test_simulate_trace(self, tmp_path, capsys):
        from repro.obs import counters, read_trace, spans_named

        trace_path = tmp_path / "sim.jsonl"
        rc = main(
            [
                "simulate",
                "--workload", "wordcount",
                "--size", "100MB",
                "--platform", "java",
                "--trace", str(trace_path),
            ]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        records = read_trace(trace_path)
        assert spans_named(records, "simulate.execute")
        assert counters(records)["simulate.executions"] == 1

    def test_unknown_workload_is_an_error(self, capsys):
        rc = main(["simulate", "--workload", "nosuchquery"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_train_optimize_explain_pipeline(self, tmp_path, capsys):
        model_path = tmp_path / "model.pkl"
        rc = main(
            [
                "train",
                "--points", "400",
                "--seed", "1",
                "--out", str(model_path),
            ]
        )
        assert rc == 0
        assert model_path.exists()
        capsys.readouterr()

        plan_path = tmp_path / "plan.json"
        trace_path = tmp_path / "trace.jsonl"
        rc = main(
            [
                "optimize",
                "--workload", "WordCount",
                "--size", "300MB",
                "--model", str(model_path),
                "--out", str(plan_path),
                "--trace", str(trace_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted runtime" in out
        blob = json.loads(plan_path.read_text())
        assert blob["plan"]["name"] == "wordcount"
        assert len(blob["assignment"]) == 6

        from repro.obs import counters, read_trace, spans_named

        records = read_trace(trace_path)
        assert spans_named(records, "enumerate")
        assert spans_named(records, "enumerate.merge")
        assert spans_named(records, "model.predict")
        totals = counters(records)
        assert totals["enumerate.merges"] >= 1
        assert totals["enumerate.prune_calls"] >= 1
        assert totals["model.rows_predicted"] > 0

        rc = main(
            [
                "explain",
                "--workload", "WordCount",
                "--size", "300MB",
                "--model", str(model_path),
            ]
        )
        assert rc == 0
        assert "Chosen plan" in capsys.readouterr().out

    def test_optimize_plan_json_input(self, tmp_path, capsys):
        from repro.rheem.serialization import plan_to_json
        from conftest import build_pipeline

        model_path = tmp_path / "model.pkl"
        main(["train", "--points", "400", "--seed", "2", "--out", str(model_path)])
        capsys.readouterr()
        plan_path = tmp_path / "my_plan.json"
        plan_path.write_text(plan_to_json(build_pipeline(3)))
        rc = main(
            ["optimize", "--plan-json", str(plan_path), "--model", str(model_path)]
        )
        assert rc == 0
        assert "predicted runtime" in capsys.readouterr().out


class TestBatchCli:
    """optimize-batch plumbing: worker sizing, latency output, and the
    ISSUE 6 bench-recording guard (test runs must not pollute the
    persistent trajectory)."""

    def _write_jobs(self, tmp_path, n=2):
        path = tmp_path / "jobs.jsonl"
        rows = [
            {"id": f"wc{i}", "workload": "WordCount", "size": f"{20 * (i + 1)}MB"}
            for i in range(n)
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        return path

    def test_workers_flag_accepts_auto_and_integers(self):
        from repro.cli import build_parser

        parser = build_parser()
        base = ["optimize-batch", "--jobs", "j.jsonl", "--model", "m.pkl"]
        assert parser.parse_args(base).workers is None  # auto by default
        assert parser.parse_args(base + ["--workers", "auto"]).workers is None
        assert parser.parse_args(base + ["--workers", "0"]).workers == 0
        assert parser.parse_args(base + ["--workers", "3"]).workers == 3

    def test_batch_prints_workers_and_latency_percentiles(self, tmp_path, capsys):
        jobs = self._write_jobs(tmp_path)
        rc = main(
            [
                "optimize-batch",
                "--jobs", str(jobs),
                "--model", str(tmp_path / "missing.pkl"),
                "--workers", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "workers=" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out

    def test_trajectory_recording_suppressed_under_pytest(
        self, tmp_path, capsys, monkeypatch
    ):
        """A CLI run driven from a test must not append to the bench
        trajectory — that is exactly the BENCH_*.json pollution bug."""
        from repro.bench import trajectory

        assert trajectory.under_pytest()  # we *are* the pytest process
        bench = tmp_path / "BENCH_test.json"
        monkeypatch.setenv("REPRO_BENCH_FILE", str(bench))
        jobs = self._write_jobs(tmp_path)
        rc = main(
            [
                "optimize-batch",
                "--jobs", str(jobs),
                "--model", str(tmp_path / "missing.pkl"),
                "--workers", "0",
            ]
        )
        assert rc == 0
        assert not bench.exists()

    def test_bench_record_flag_opts_back_in(self, tmp_path, capsys, monkeypatch):
        bench = tmp_path / "BENCH_test.json"
        monkeypatch.setenv("REPRO_BENCH_FILE", str(bench))
        jobs = self._write_jobs(tmp_path)
        rc = main(
            [
                "optimize-batch",
                "--jobs", str(jobs),
                "--model", str(tmp_path / "missing.pkl"),
                "--workers", "0",
                "--bench-record",
            ]
        )
        assert rc == 0
        entries = json.loads(bench.read_text())
        assert [e["name"] for e in entries] == ["serve.optimize_batch"]
        metrics = entries[0]["metrics"]
        for key in ("latency_p50_s", "latency_p95_s", "latency_p99_s",
                    "workers", "workers_requested", "plans_per_sec"):
            assert key in metrics
