"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("30MB") == 30 * 2 ** 20
        assert parse_size("6GB") == 6 * 2 ** 30
        assert parse_size("1TB") == 2 ** 40
        assert parse_size("2.5 gb") == 2.5 * 2 ** 30

    def test_plain_bytes(self):
        assert parse_size("1024") == 1024.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("many")


class TestCommands:
    def test_workloads_lists_table2(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("WordCount", "SGD", "CrocoPR", "TPC-H Q3"):
            assert name in out

    def test_simulate_all_platforms(self, capsys):
        rc = main(["simulate", "--workload", "wordcount", "--size", "3GB"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "java" in out and "oom" in out  # 3GB OOMs on java
        assert "spark" in out and "flink" in out

    def test_simulate_single_platform(self, capsys):
        rc = main(
            ["simulate", "--workload", "tpchq1", "--size", "1GB", "--platform", "flink"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "flink" in out and "java" not in out

    def test_simulate_trace(self, tmp_path, capsys):
        from repro.obs import counters, read_trace, spans_named

        trace_path = tmp_path / "sim.jsonl"
        rc = main(
            [
                "simulate",
                "--workload", "wordcount",
                "--size", "100MB",
                "--platform", "java",
                "--trace", str(trace_path),
            ]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        records = read_trace(trace_path)
        assert spans_named(records, "simulate.execute")
        assert counters(records)["simulate.executions"] == 1

    def test_unknown_workload_is_an_error(self, capsys):
        rc = main(["simulate", "--workload", "nosuchquery"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_train_optimize_explain_pipeline(self, tmp_path, capsys):
        model_path = tmp_path / "model.pkl"
        rc = main(
            [
                "train",
                "--points", "400",
                "--seed", "1",
                "--out", str(model_path),
            ]
        )
        assert rc == 0
        assert model_path.exists()
        capsys.readouterr()

        plan_path = tmp_path / "plan.json"
        trace_path = tmp_path / "trace.jsonl"
        rc = main(
            [
                "optimize",
                "--workload", "WordCount",
                "--size", "300MB",
                "--model", str(model_path),
                "--out", str(plan_path),
                "--trace", str(trace_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted runtime" in out
        blob = json.loads(plan_path.read_text())
        assert blob["plan"]["name"] == "wordcount"
        assert len(blob["assignment"]) == 6

        from repro.obs import counters, read_trace, spans_named

        records = read_trace(trace_path)
        assert spans_named(records, "enumerate")
        assert spans_named(records, "enumerate.merge")
        assert spans_named(records, "model.predict")
        totals = counters(records)
        assert totals["enumerate.merges"] >= 1
        assert totals["enumerate.prune_calls"] >= 1
        assert totals["model.rows_predicted"] > 0

        rc = main(
            [
                "explain",
                "--workload", "WordCount",
                "--size", "300MB",
                "--model", str(model_path),
            ]
        )
        assert rc == 0
        assert "Chosen plan" in capsys.readouterr().out

    def test_optimize_plan_json_input(self, tmp_path, capsys):
        from repro.rheem.serialization import plan_to_json
        from conftest import build_pipeline

        model_path = tmp_path / "model.pkl"
        main(["train", "--points", "400", "--seed", "2", "--out", str(model_path)])
        capsys.readouterr()
        plan_path = tmp_path / "my_plan.json"
        plan_path.write_text(plan_to_json(build_pipeline(3)))
        rc = main(
            ["optimize", "--plan-json", str(plan_path), "--model", str(model_path)]
        )
        assert rc == 0
        assert "predicted runtime" in capsys.readouterr().out
