"""Differential proofs for the matrix-native merge/prune kernels (ISSUE 8).

The hot-path rewrites — pair-coded conversion deltas in the merge, the
packed-footprint grouping fused into prune's lexsort, and the amortized
static kernel — all claim *bit-identical* outputs to their reference
formulations. This suite states each claim as a property and checks it
with hypothesis-driven inputs:

* packed-footprint grouping produces the exact partition (and prune the
  exact survivors) of ``np.unique(fp, axis=0)``, across the dict path
  (n <= 64), the single-word path (boundary <= 8 columns) and the
  chunked path (> 8 columns);
* the pair-coded cartesian merge reproduces the masked per-platform-pair
  reference merge bit-for-bit over random TDGEN plans, including the
  incremental static patches (additive cells, head dissolution, card
  refolds) against the schema's per-scope reference;
* the static kernel reproduces :meth:`FeatureSchema.static_features`
  bit-for-bit on arbitrary scopes.

Bit-identity is asserted on raw bytes (``tobytes``), not ``==`` — the
point is that optimized and reference paths take the same IEEE rounding
steps, so downstream cost comparisons can never diverge.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.core.features import FeatureSchema
from repro.core.operations import merge_enumerations
from repro.core.pruning import footprint_groups, prune
from repro.rheem.platforms import synthetic_registry
from repro.tdgen.jobgen import JobGenerator

from conftest import build_pipeline, make_linear_cost

SHAPES = ("pipeline", "juncture", "replicate", "loop")

KERNEL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Shared contexts (plan/registry construction dominates example cost).
# ----------------------------------------------------------------------


@lru_cache(maxsize=1)
def _wide_ctx() -> EnumerationContext:
    """A 26-op pipeline on 3 platforms.

    Alternating-op scopes of this plan have *every* scoped operator on
    the boundary (each neighbours an out-of-scope operator), so hand-built
    enumerations reach footprints of up to 13 columns — past the 8-column
    single-word limit of the packed grouping.
    """
    return EnumerationContext(build_pipeline(24), synthetic_registry(3))


@lru_cache(maxsize=32)
def _tdgen_case(shape: str, k: int, seed: int):
    """(ctx, cost_fn) for one random TDGEN plan."""
    registry = synthetic_registry(k)
    gen = JobGenerator(registry, seed=seed)
    template = gen.templates_for_shapes(
        (shape,), max_operators=9, count=1, min_operators=6
    )[0]
    plan = template(10.0 ** (3 + seed % 4))
    ctx = EnumerationContext(plan, registry)
    return ctx, make_linear_cost(ctx.schema, seed=seed)


def _stub_enumeration(fp: np.ndarray):
    """A real enumeration whose pruning footprint is exactly ``fp``.

    Scope = the first ``m`` even-id operators of the wide pipeline, so the
    boundary is the whole scope and the footprint columns are ``fp``'s
    columns verbatim. Feature column 1 tags the original row index, which
    survives ``select`` and identifies the chosen survivors.
    """
    ctx = _wide_ctx()
    n, m = fp.shape
    scope_ids = sorted(ctx.plan.operators)[0::2][:m]
    assignments = np.full((n, ctx.n_ops), -1, dtype=np.int8)
    assignments[:, scope_ids] = fp
    features = np.zeros((n, ctx.schema.n_features), dtype=np.float64)
    features[:, 1] = np.arange(n, dtype=np.float64)
    enum = PlanVectorEnumeration(
        ctx, frozenset(scope_ids), features, assignments
    )
    assert enum.boundary_list() == scope_ids  # the scope *is* the boundary
    return enum


@st.composite
def footprints(draw):
    """(footprint matrix, costs) spanning all three grouping paths."""
    n = draw(st.integers(min_value=1, max_value=120))
    m = draw(st.integers(min_value=1, max_value=13))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    few_platforms = draw(st.booleans())  # force duplicate footprints often
    rng = np.random.default_rng(seed)
    fp = rng.integers(0, 2 if few_platforms else 3, size=(n, m), dtype=np.int8)
    # Integer-valued costs with few levels force plenty of cost ties, so
    # the earliest-row tie-break is actually exercised.
    costs = rng.integers(0, 4, size=n).astype(np.float64)
    return fp, costs


# ----------------------------------------------------------------------
# Packed-footprint grouping and pruning vs the np.unique reference.
# ----------------------------------------------------------------------


class TestPackedFootprints:
    @KERNEL_SETTINGS
    @given(case=footprints())
    @example(case=(np.zeros((1, 1), dtype=np.int8), np.zeros(1)))
    def test_groups_match_np_unique(self, case):
        fp, _ = case
        enum = _stub_enumeration(fp)
        groups = footprint_groups(enum)
        _, inverse = np.unique(fp, axis=0, return_inverse=True)
        assert np.array_equal(groups, inverse.reshape(-1))

    @KERNEL_SETTINGS
    @given(case=footprints())
    def test_prune_survivors_match_reference(self, case):
        fp, costs = case
        self._check_survivors(fp, costs)

    @pytest.mark.parametrize(
        "n,m",
        [(40, 3), (100, 6), (100, 12), (64, 1), (65, 8), (65, 9)],
    )
    def test_prune_survivors_on_path_boundaries(self, n, m):
        """Pin the dict (n<=64), one-word (m<=8) and chunked (m>8) paths."""
        rng = np.random.default_rng(n * 100 + m)
        fp = rng.integers(0, 2, size=(n, m), dtype=np.int8)
        costs = rng.integers(0, 3, size=n).astype(np.float64)
        self._check_survivors(fp, costs)

    @staticmethod
    def _check_survivors(fp: np.ndarray, costs: np.ndarray) -> None:
        enum = _stub_enumeration(fp)
        pruned, returned = prune(enum, lambda e: costs.copy())
        # Reference: cheapest row per footprint, earliest row on ties.
        best = {}
        for r in range(fp.shape[0]):
            key = tuple(fp[r].tolist())
            hit = best.get(key)
            if hit is None or costs[r] < hit[1]:
                best[key] = (r, costs[r])
        expected = sorted(r for r, _ in best.values())
        survivors = pruned.features[:, 1].astype(np.int64).tolist()
        assert survivors == expected
        assert np.array_equal(returned, costs)
        assert np.array_equal(pruned.cached_costs(), costs[expected])


# ----------------------------------------------------------------------
# Pair-coded merge vs the masked per-platform-pair reference.
# ----------------------------------------------------------------------


def _reference_merge(ctx, left, right):
    """The pre-ISSUE-8 merge formulation, kept as the differential oracle.

    Cartesian broadcast add, then — per crossing edge — one dense delta
    row per ``(src platform, dst platform)`` pair applied under a boolean
    mask, then a full rewrite of the static columns from the *schema's*
    per-scope reference (not the kernel). Dense per-pair rows accumulate
    each pair's sparse deltas exactly like the pair-coded table build, so
    any divergence isolates the optimized gather/add path.
    """
    n1, n2 = left.n_vectors, right.n_vectors
    n_features = left.features.shape[1]
    feats = np.ascontiguousarray(
        (left.features[:, None, :] + right.features[None, :, :]).reshape(
            n1 * n2, n_features
        )
    )
    asgn = (
        left.assignments[:, None, :].astype(np.int16)
        + right.assignments[None, :, :]
        + 1
    ).reshape(n1 * n2, ctx.n_ops).astype(np.int8)
    for edge in ctx.crossing_edges(left.scope, right.scope):
        for (pi, pj), (cols, vals) in edge.deltas.items():
            dense = np.zeros(n_features, dtype=np.float64)
            np.add.at(dense, cols, vals)
            mask = (asgn[:, edge.src] == pi) & (asgn[:, edge.dst] == pj)
            feats[mask] += dense
    scope = left.scope | right.scope
    static = ctx.schema.static_features(ctx.plan, scope)
    cols = ctx.static_cols
    feats[:, cols] = static[cols]
    return feats, asgn


def _assert_merge_matches(ctx, left, right):
    merged = merge_enumerations(left, right)
    ref_feats, ref_asgn = _reference_merge(ctx, left, right)
    assert merged.features.shape == ref_feats.shape
    assert merged.features.tobytes() == ref_feats.tobytes(), (
        "pair-coded merge diverged from the masked reference on scope "
        f"{sorted(left.scope)} + {sorted(right.scope)}"
    )
    assert np.array_equal(merged.assignments, ref_asgn)
    return merged


class TestPairCodedMerge:
    @KERNEL_SETTINGS
    @given(
        shape=st.sampled_from(SHAPES),
        k=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=7),
    )
    @example(shape="pipeline", k=2, seed=0)
    @example(shape="loop", k=3, seed=1)
    def test_chain_merges_bit_identical(self, shape, k, seed):
        """Left- and right-accumulated chain walks over a TDGEN plan."""
        ctx, cost_fn = _tdgen_case(shape, k, seed)
        singles = ctx.singleton_enumerations()
        acc = singles[0]
        for s in singles[1:]:
            _assert_merge_matches(ctx, acc, s)
            merged = _assert_merge_matches(ctx, s, acc)  # flipped operands
            acc, _ = prune(merged, cost_fn)

    @KERNEL_SETTINGS
    @given(
        shape=st.sampled_from(SHAPES),
        k=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=7),
    )
    @example(shape="pipeline", k=2, seed=2)
    def test_segment_merges_bit_identical(self, shape, k, seed):
        """Segment + segment merges (the card-refold path, not just
        singleton appends)."""
        ctx, cost_fn = _tdgen_case(shape, k, seed)
        singles = ctx.singleton_enumerations()
        segments = []
        for i in range(0, len(singles) - 1, 2):
            merged = _assert_merge_matches(ctx, singles[i], singles[i + 1])
            pruned, _ = prune(merged, cost_fn)
            segments.append(pruned)
        acc = segments[0]
        for seg in segments[1:]:
            merged = _assert_merge_matches(ctx, acc, seg)
            acc, _ = prune(merged, cost_fn)


# ----------------------------------------------------------------------
# Static kernel vs the schema reference.
# ----------------------------------------------------------------------


class TestStaticKernel:
    @KERNEL_SETTINGS
    @given(
        shape=st.sampled_from(SHAPES),
        k=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=7),
        scope_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @example(shape="pipeline", k=2, seed=0, scope_seed=0)
    def test_static_vector_matches_schema(self, shape, k, seed, scope_seed):
        ctx, _ = _tdgen_case(shape, k, seed)
        kernel = ctx._kernel()
        schema = ctx.schema
        plan = ctx.plan
        n = plan.n_operators
        rng = np.random.default_rng(scope_seed)
        scopes = [frozenset(plan.operators)]  # the full scope
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo, n))
        scopes.append(frozenset(range(lo, hi + 1)))  # a contiguous range
        subset = rng.random(n) < 0.5
        if subset.any():
            scopes.append(frozenset(np.flatnonzero(subset).tolist()))
        for scope in scopes:
            got = kernel.static_vector(scope)
            want = schema.static_features(plan, scope)
            assert got.tobytes() == want.tobytes(), sorted(scope)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_singleton_statics_match_schema(self, shape):
        ctx, _ = _tdgen_case(shape, 2, 0)
        kernel = ctx._kernel()
        rows = kernel.singleton_statics()
        for op_id in ctx.plan.operators:
            want = ctx.schema.static_features(ctx.plan, frozenset({op_id}))
            assert rows[op_id].tobytes() == want.tobytes(), op_id

    @pytest.mark.parametrize("shape", SHAPES)
    def test_singleton_enumerations_match_per_op_reference(self, shape):
        from repro.core.operations import enumerate_singleton, split, vectorize

        ctx, _ = _tdgen_case(shape, 3, 1)
        batched = ctx.singleton_enumerations()
        parts = split(vectorize(ctx))
        for op_id, part in zip(sorted(ctx.plan.operators), parts):
            ref = enumerate_singleton(part)
            got = batched[op_id]
            assert got.scope == ref.scope == frozenset({op_id})
            assert got.features.tobytes() == ref.features.tobytes()
            assert np.array_equal(got.assignments, ref.assignments)
