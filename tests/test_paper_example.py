"""The paper's running example (Figs. 3, 5, 6) as an executable test.

Builds the customer-classification query of Fig. 3(a), instantiates the
execution plan of Fig. 3(b) (Spark for the large transactions branch,
Java for the small customers branch), and checks the plan vector encodes
exactly what Fig. 5 describes, plus the LOT/COT structure of Fig. 6.
"""

import numpy as np
import pytest

from repro.core.features import FeatureSchema
from repro.core.lot_cot import ConversionOperatorsTable, LogicalOperatorsTable
from repro.rheem.datasets import DatasetProfile
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import default_registry


@pytest.fixture
def running_example():
    """Fig. 3(a): classify customers of a country by their transactions."""
    plan = LogicalPlan("fig3")
    # o1/o2: transactions branch (large).
    o1 = plan.add(
        operator("TextFileSource", "TextFileSource(transactions)"),
        dataset=DatasetProfile("transactions", 40e6, 120.0),
    )
    o2 = plan.add(operator("Filter", "Filter(month)", selectivity=0.25))
    # o3/o4/o5: customers branch (small).
    o3 = plan.add(
        operator("TextFileSource", "TextFileSource(customers)"),
        dataset=DatasetProfile("customers", 2e6, 80.0),
    )
    o4 = plan.add(operator("Filter", "Filter(country)", selectivity=0.05))
    o5 = plan.add(operator("Map", "Map(project)"))
    # o6..o9: join and aggregation.
    o6 = plan.add(operator("Join", "Join(customer_id)", selectivity=0.1))
    o7 = plan.add(operator("ReduceBy", "ReduceBy(sum_&_count)", selectivity=0.01))
    o8 = plan.add(operator("Map", "Map(label)"))
    o9 = plan.add(operator("CollectionSink", "CollectionSink"))
    plan.chain(o1, o2, o6)
    plan.chain(o3, o4, o5, o6)
    plan.chain(o6, o7, o8, o9)
    plan.validate()
    return plan


@pytest.fixture
def fig3b_execution_plan(running_example):
    """Fig. 3(b): customers on Java, everything else on Spark."""
    reg = default_registry(("java", "spark"))
    assignment = {i: "spark" for i in running_example.operators}
    assignment[2] = "java"  # o3 TextFileSource(customers)
    assignment[3] = "java"  # o4 Filter(country)
    assignment[4] = "java"  # o5 Map(project)
    return ExecutionPlan(running_example, assignment, reg)


class TestFig3Topology:
    def test_three_pipelines_one_juncture(self, running_example):
        topo = running_example.topology_counts()
        assert topo.pipeline == 3
        assert topo.juncture == 1
        assert topo.replicate == 0
        assert topo.loop == 0


class TestFig3bConversions:
    def test_data_moves_at_the_branch_boundary_and_sink(self, fig3b_execution_plan):
        kinds = [(c.kind, c.platform) for c in fig3b_execution_plan.conversions()]
        # Java customers branch ships into Spark for the join
        # (Fig. 3(b)'s JavaCollect + SparkCollectionSource pair = our
        # 'distribute' channel step into Spark).
        assert ("distribute", "spark") in kinds
        assert fig3b_execution_plan.num_platform_switches() == 1
        assert fig3b_execution_plan.platforms_used() == ("java", "spark")


class TestFig5PlanVector:
    def test_fig5_cells(self, fig3b_execution_plan):
        xplan = fig3b_execution_plan
        schema = FeatureSchema(xplan.registry)
        v = schema.encode_execution_plan(xplan)
        java = xplan.registry.index("java")
        spark = xplan.registry.index("spark")

        # Shape features (orange): 3 pipelines, 1 juncture, 0 replicate/loop.
        assert v[0:4].tolist() == [3, 1, 0, 0]

        # Operator features (green): Filter appears twice — once per
        # platform — and both instances sit in pipelines.
        assert v[schema.op_total_cell("Filter")] == 2
        assert v[schema.op_platform_cell("Filter", java)] == 1
        assert v[schema.op_platform_cell("Filter", spark)] == 1
        assert v[schema.op_topology_cell("Filter", 0)] == 2  # pipeline
        assert v[schema.op_topology_cell("Filter", 1)] == 0  # juncture

        # Filter input cardinalities: 40M transactions + 2M customers.
        assert v[schema.op_input_card_cell("Filter")] == pytest.approx(42e6)
        # Filter UDF complexities: both linear (2 + 2), as in Fig. 5.
        assert v[schema.op_udf_cell("Filter")] == 4

        # Data movement features (blue): one distribute into Spark.
        assert v[schema.conv_platform_cell("distribute", spark)] == 1
        moved = xplan.conversions()[0].cardinality
        assert v[schema.conv_input_card_cell("distribute")] == pytest.approx(moved)

        # Dataset feature (pink): the max input tuple size.
        assert v[schema.tuple_size_cell] == 120.0

    def test_join_is_the_juncture(self, fig3b_execution_plan):
        schema = FeatureSchema(fig3b_execution_plan.registry)
        v = schema.encode_execution_plan(fig3b_execution_plan)
        assert v[schema.op_topology_cell("Join", 1)] == 1


class TestFig6Tables:
    def test_lot_matches_fig6(self, running_example):
        lot = LogicalOperatorsTable(running_example)
        assert len(lot) == 9
        join_row = lot[5]
        assert join_row.kind == "Join"
        assert set(join_row.parents) == {1, 4}  # o2 and o5 feed the join
        text = lot.render()
        assert "Join(customer_id)" in text

    def test_cot_lists_the_platform_switches(self, fig3b_execution_plan):
        cot = ConversionOperatorsTable(fig3b_execution_plan)
        assert len(cot) == len(fig3b_execution_plan.conversions()) >= 1
        assert any(row.kind == "distribute" for row in cot.rows)
