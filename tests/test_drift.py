"""Drift detection and the serving-side feedback controller.

Three layers under test:

* :class:`repro.ml.drift.DriftMonitor` — the sliding q-error window and
  its OK/WARN/DRIFTED verdicts;
* :meth:`repro.ml.model.RuntimeModel.predict_dist` — the log-space
  delta transform from forest disagreement to seconds, with the mean
  bit-identical to ``predict_matrix``;
* :class:`repro.serve.feedback.FeedbackController` — execute → observe
  → retrain → install, with both the count and the drift trigger.
"""

import json

import numpy as np
import pytest

from repro.api import OptimizationResult, RunStats
from repro.exceptions import ModelError
from repro.ml.drift import DriftMonitor, DriftStatus
from repro.ml.feedback import FeedbackLoop
from repro.obs import Tracer, use_tracer
from repro.rheem.execution_plan import single_platform_plan
from repro.serve.feedback import FeedbackController

from conftest import build_pipeline


class TestDriftMonitor:
    def test_validation(self):
        with pytest.raises(ModelError):
            DriftMonitor(window=0)
        with pytest.raises(ModelError):
            DriftMonitor(min_samples=0)
        with pytest.raises(ModelError):
            DriftMonitor(warn_threshold=0.5)
        with pytest.raises(ModelError):
            DriftMonitor(warn_threshold=3.0, drift_threshold=2.0)
        with pytest.raises(ModelError):
            DriftMonitor(quantile=1.5)

    def test_ok_below_min_samples(self):
        """A two-sample window saying "drifted" is noise: no verdict
        other than OK until min_samples observations arrive."""
        monitor = DriftMonitor(window=8, min_samples=4, drift_threshold=2.0)
        for _ in range(3):
            assert monitor.observe(1.0, 100.0) is DriftStatus.OK
        assert monitor.observe(1.0, 100.0) is DriftStatus.DRIFTED

    def test_verdict_ladder(self):
        monitor = DriftMonitor(
            window=8, min_samples=2, warn_threshold=2.0, drift_threshold=4.0
        )
        monitor.observe(10.0, 10.0)
        monitor.observe(10.0, 10.0)
        assert monitor.status() is DriftStatus.OK
        monitor.reset()
        for _ in range(2):
            monitor.observe(10.0, 25.0)  # q = 2.5
        assert monitor.status() is DriftStatus.WARN
        monitor.reset()
        for _ in range(2):
            monitor.observe(10.0, 50.0)  # q = 5
        assert monitor.status() is DriftStatus.DRIFTED

    def test_window_slides(self):
        """Old mispredictions age out: only the last ``window`` pairs
        drive the verdict."""
        monitor = DriftMonitor(window=4, min_samples=2, drift_threshold=3.0)
        for _ in range(4):
            monitor.observe(1.0, 10.0)
        assert monitor.status() is DriftStatus.DRIFTED
        for _ in range(4):
            monitor.observe(10.0, 10.0)
        assert monitor.status() is DriftStatus.OK
        assert monitor.total_observations == 8
        assert len(monitor) == 4

    def test_bad_samples_ignored(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.observe(float("nan"), 1.0)
        monitor.observe(1.0, float("inf"))
        monitor.observe(-1.0, 1.0)
        assert len(monitor) == 0
        assert np.isnan(monitor.q_error())

    def test_direction_symmetric(self):
        """Q-error penalizes over- and under-prediction alike."""
        over = DriftMonitor(min_samples=1)
        under = DriftMonitor(min_samples=1)
        over.observe(50.0, 10.0)
        under.observe(10.0, 50.0)
        assert over.q_error() == pytest.approx(under.q_error()) == pytest.approx(5.0)

    def test_snapshot_shape(self):
        monitor = DriftMonitor(min_samples=1)
        snap = monitor.snapshot()
        assert set(snap) == {"window", "observations", "q_error", "status"}
        assert snap["status"] == "ok"
        monitor.observe(10.0, 20.0)
        snap = monitor.snapshot()
        assert snap["q_error"] == pytest.approx(2.0)
        assert snap["window"] == 1.0


class TestRuntimeModelPredictDist:
    def test_mean_bit_identical_to_predict(self, tiny_context):
        """Switching a consumer to predict_dist must not move a single
        ranking decision: the means are the same array values."""
        model = tiny_context["model"]
        X = tiny_context["dataset"].X[:64]
        assert model.supports_dist
        mean, std = model.predict_dist(X)
        assert np.array_equal(mean, model.predict_matrix(X))
        assert std.shape == mean.shape
        assert np.all(std >= 0) and np.all(np.isfinite(std))
        assert np.any(std > 0)  # a 12-tree forest disagrees somewhere

    def test_delta_transform_scales_with_mean(self, tiny_context):
        """std_s = exp(mean_log) * std_log: the seconds-space spread of a
        long-running plan exceeds that of a cheap plan with the same
        log-space disagreement."""
        model = tiny_context["model"]
        X = tiny_context["dataset"].X[:256]
        mean, std = model.predict_dist(X)
        log_mean, log_std = model._regressor.predict_dist(
            np.asarray(X, dtype=np.float64)
        )
        assert np.allclose(std, np.exp(log_mean) * log_std)

    def test_point_only_model_reports_zero(self, tiny_context):
        from repro.ml.model import RuntimeModel

        linear = RuntimeModel.train(
            tiny_context["dataset"].take(np.arange(200)), "linear", seed=0
        )
        assert not linear.supports_dist
        X = tiny_context["dataset"].X[:8]
        mean, std = linear.predict_dist(X)
        assert np.array_equal(mean, linear.predict_matrix(X))
        assert np.array_equal(std, np.zeros(8))


class _ScriptedExecutor:
    """Execution double returning scripted runtimes (cycled)."""

    def __init__(self, runtimes):
        self.runtimes = list(runtimes)
        self.calls = 0

    def execute(self, xplan, timeout_s=3600.0):
        runtime = self.runtimes[self.calls % len(self.runtimes)]
        self.calls += 1

        class _Report:
            def __init__(self, runtime_s):
                self.ok = np.isfinite(runtime_s)
                self.status = "success" if self.ok else "failed"
                self.runtime_s = runtime_s
                self.detail = ""

        return _Report(runtime)


class TestFeedbackController:
    def _result(self, ctx, predicted=10.0, degraded=False):
        xp = single_platform_plan(build_pipeline(3), "spark", ctx["registry"])
        return OptimizationResult(
            execution_plan=xp,
            predicted_runtime=predicted,
            stats=RunStats(degraded=degraded, degradation="x" if degraded else ""),
        )

    def _controller(self, ctx, runtimes=(12.0,), **kwargs):
        kwargs.setdefault("min_observations", 2)
        kwargs.setdefault("retrain_after", 3)
        loop = FeedbackLoop(
            ctx["schema"],
            base_dataset=ctx["dataset"],
            n_estimators=4,
            max_depth=8,
        )
        drift = kwargs.pop("drift", DriftMonitor(min_samples=2))
        return FeedbackController(
            loop, _ScriptedExecutor(runtimes), drift=drift, **kwargs
        )

    def test_observe_feeds_loop_and_drift(self, tiny_context):
        ctrl = self._controller(tiny_context, runtimes=(20.0,))
        tracer = Tracer()
        with use_tracer(tracer):
            assert ctrl.observe(self._result(tiny_context, predicted=10.0))
        assert ctrl.loop.n_observations == 1
        assert ctrl.drift.q_error() == pytest.approx(2.0)
        assert tracer.counters["serve.feedback.observed"] == 1

    def test_degraded_plan_never_becomes_a_label(self, tiny_context):
        """Fallback-served plans are rejected by the loop AND invisible
        to the drift monitor — a burst of degraded answers must not
        masquerade as model drift."""
        ctrl = self._controller(tiny_context, runtimes=(500.0,))
        assert not ctrl.observe(self._result(tiny_context, degraded=True))
        assert ctrl.loop.n_observations == 0
        assert len(ctrl.drift) == 0
        assert ctrl.loop.rejected == 1

    def test_failed_execution_rejected(self, tiny_context):
        ctrl = self._controller(tiny_context, runtimes=(float("inf"),))
        tracer = Tracer()
        with use_tracer(tracer):
            assert not ctrl.observe(self._result(tiny_context))
        assert ctrl.execution_failures == 1
        assert ctrl.loop.n_observations == 0
        assert tracer.counters["serve.feedback.execution_failed"] == 1

    def test_count_trigger_retrains_and_installs(self, tiny_context):
        installed = []
        ctrl = self._controller(tiny_context, retrain_after=3, min_observations=2)
        ctrl.install = installed.append
        for _ in range(2):
            ctrl.observe(self._result(tiny_context))
            assert not ctrl.maybe_retrain()  # below retrain_after
        ctrl.observe(self._result(tiny_context))
        assert ctrl.maybe_retrain()
        assert len(installed) == 1
        assert installed[0].predict_one(tiny_context["dataset"].X[0]) >= 0
        assert ctrl.model_generation == 1
        assert ctrl.loop.observations_since_retrain == 0
        assert len(ctrl.drift) == 0  # drift window reset with the swap

    def test_drift_trigger_fires_before_count(self, tiny_context):
        """A drifted model is refit immediately, not after retrain_after
        more bad answers."""
        ctrl = self._controller(
            tiny_context,
            runtimes=(100.0,),  # 10x the predicted 10.0
            retrain_after=50,
            min_observations=2,
            drift=DriftMonitor(min_samples=2, drift_threshold=4.0),
        )
        ctrl.observe(self._result(tiny_context))
        assert not ctrl.maybe_retrain()  # min_observations not met... yet
        ctrl.observe(self._result(tiny_context))
        assert ctrl.drift.status() is DriftStatus.DRIFTED
        assert ctrl.maybe_retrain()
        assert ctrl.loop.n_retrains == 1

    def test_install_failure_is_contained(self, tiny_context):
        def broken_install(model):
            raise RuntimeError("swap failed")

        ctrl = self._controller(tiny_context, retrain_after=2, min_observations=2)
        ctrl.install = broken_install
        ctrl.observe(self._result(tiny_context))
        ctrl.observe(self._result(tiny_context))
        tracer = Tracer()
        with use_tracer(tracer):
            assert ctrl.maybe_retrain()
        assert tracer.counters["serve.feedback.install_failed"] == 1
        assert ctrl.model_generation == 0
        assert "swap failed" in ctrl.last_error
        assert not ctrl._retraining  # the controller can try again

    def test_background_retrain_joins(self, tiny_context):
        ctrl = self._controller(
            tiny_context, retrain_after=2, min_observations=2, background=True
        )
        ctrl.observe(self._result(tiny_context))
        ctrl.observe(self._result(tiny_context))
        assert ctrl.maybe_retrain()
        ctrl.join()
        assert ctrl.loop.n_retrains == 1
        assert ctrl.model_generation == 1

    def test_stats_payload_is_json_safe(self, tiny_context):
        ctrl = self._controller(tiny_context)
        stats = ctrl.stats()
        assert stats["q_error"] is None  # NaN never reaches the wire
        json.dumps(stats, allow_nan=False)
        ctrl.observe(self._result(tiny_context, predicted=10.0))
        stats = ctrl.stats()
        assert stats["observations_total"] == 1
        assert isinstance(stats["q_error"], float)
        json.dumps(stats, allow_nan=False)

class TestDriftHealDrill:
    """The ISSUE 10 chaos drill: shift the workload under a trained
    model, watch the drift monitor notice, and verify the automatic
    retrain actually heals prediction quality on held-out plans."""

    FACTOR = 10.0  # the injected slowdown: the whole cluster, 10x slower

    def _shifted_executor(self, registry):
        from repro.simulator.executor import SimulatedExecutor

        base = SimulatedExecutor.default(registry)
        profiles = {
            name: p.with_overrides(
                tuple_rate=p.tuple_rate / self.FACTOR,
                shuffle_rate=p.shuffle_rate / self.FACTOR,
                io_rate=p.io_rate / self.FACTOR,
                startup_s=p.startup_s * self.FACTOR,
                per_op_overhead_s=p.per_op_overhead_s * self.FACTOR,
                loop_overhead_s=p.loop_overhead_s * self.FACTOR,
            )
            for name, p in base.profiles.items()
        }
        return SimulatedExecutor(profiles)

    def _fleet(self, registry, executor):
        """Diverse (xplan, shifted runtime) pairs that execute cleanly."""
        from repro.tdgen.jobgen import JobGenerator

        templates = JobGenerator(registry, seed=3).templates_for_shapes(
            ("pipeline", "juncture"), max_operators=8, count=12
        )
        fleet = []
        for index, template in enumerate(templates):
            plan = template(10.0 ** (3 + index % 4))
            for name in registry.names:
                xp = single_platform_plan(plan, name, registry)
                report = executor.execute(xp)
                if report.ok:
                    fleet.append((xp, report.runtime_s))
        return fleet

    def test_workload_shift_is_detected_and_healed(self, tiny_context):
        from repro.ml.drift import DriftStatus

        registry = tiny_context["registry"]
        schema = tiny_context["schema"]
        stale = tiny_context["model"]
        shifted = self._shifted_executor(registry)
        fleet = self._fleet(registry, shifted)
        assert len(fleet) >= 16, "drill needs a workload to observe"
        held_out = fleet[::4]
        feed = [pair for i, pair in enumerate(fleet) if i % 4]

        def median_q(model):
            qs = []
            for xp, truth in held_out:
                pred = max(model.predict_one(schema.encode_execution_plan(xp)), 1e-9)
                qs.append(max(pred / truth, truth / pred))
            return float(np.median(qs))

        q_before = median_q(stale)
        # The shift pushed the stale model past the drill's drift bar.
        assert q_before > 2.0

        installed = []
        ctrl = FeedbackController(
            FeedbackLoop(schema, seed=7, n_estimators=12, max_depth=14),
            shifted,
            drift=DriftMonitor(
                window=16, min_samples=6, warn_threshold=1.5, drift_threshold=2.0
            ),
            retrain_after=0,  # drift-only: the drill is about detection
            min_observations=10,
            install=installed.append,
        )
        # The production loop: predict with the currently installed
        # model; each drift trip retrains on everything seen so far and
        # the next generation faces the same monitor.
        current = stale
        drift_seen = False
        for xp, _ in feed:
            pred = current.predict_one(schema.encode_execution_plan(xp))
            ctrl.observe(
                OptimizationResult(
                    execution_plan=xp, predicted_runtime=pred, stats=RunStats()
                )
            )
            drift_seen = drift_seen or ctrl.drift.status() is DriftStatus.DRIFTED
            if ctrl.maybe_retrain():
                current = installed[-1]
        assert drift_seen, "the injected shift never tripped the monitor"
        assert ctrl.loop.n_retrains >= 1
        assert ctrl.model_generation == ctrl.loop.n_retrains
        assert installed

        q_after = median_q(installed[-1])
        heal_ratio = q_before / q_after
        assert heal_ratio >= 2.0, (
            f"retrain healed q-error only {heal_ratio:.2f}x "
            f"({q_before:.2f} -> {q_after:.2f})"
        )
