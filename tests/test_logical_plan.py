"""Tests for logical plan construction, validation and topology analysis."""

import pytest

from repro.exceptions import ArityError, CycleError, PlanError
from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan, LoopSpec
from repro.rheem.operators import operator

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def ds():
    return DatasetProfile("d", 1e6, 100.0)


class TestConstruction:
    def test_ids_are_dense_insertion_order(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        b = p.add(operator("Map"))
        c = p.add(operator("CollectionSink"))
        assert (a.id, b.id, c.id) == (0, 1, 2)

    def test_source_requires_dataset(self):
        p = LogicalPlan()
        with pytest.raises(PlanError):
            p.add(operator("TextFileSource"))

    def test_non_source_rejects_dataset(self, ds):
        p = LogicalPlan()
        with pytest.raises(PlanError):
            p.add(operator("Map"), dataset=ds)

    def test_operator_cannot_join_two_plans(self, ds):
        p1, p2 = LogicalPlan(), LogicalPlan()
        op = p1.add(operator("TextFileSource"), dataset=ds)
        with pytest.raises(PlanError):
            p2.add(op)

    def test_connect_unknown_operator_raises(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        with pytest.raises(PlanError):
            p.connect(a, 99)

    def test_self_loop_rejected(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        with pytest.raises(CycleError):
            p.connect(a, a)

    def test_chain_returns_last(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        b = p.add(operator("Map"))
        c = p.add(operator("CollectionSink"))
        assert p.chain(a, b, c) is c
        assert p.children(a.id) == [b.id]
        assert p.parents(c.id) == [b.id]


class TestValidation:
    def test_valid_pipeline_passes(self):
        build_pipeline().validate()

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan().validate()

    def test_cycle_detected(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        b = p.add(operator("Map"))
        c = p.add(operator("Map"))
        p.connect(a, b)
        p.connect(b, c)
        p.connect(c, b)
        with pytest.raises(CycleError):
            p.validate()

    def test_wrong_arity_detected(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        j = p.add(operator("Join"))  # binary but gets one input
        k = p.add(operator("CollectionSink"))
        p.chain(a, j, k)
        with pytest.raises(ArityError):
            p.validate()

    def test_dangling_operator_detected_strict(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        b = p.add(operator("Map"))  # feeds nothing
        k = p.add(operator("CollectionSink"))
        p.connect(a, b)
        # no sink path; build a second complete path so only b dangles
        with pytest.raises(ArityError):
            p.validate()
        p2 = LogicalPlan()
        s = p2.add(operator("TextFileSource"), dataset=ds)
        m = p2.add(operator("Map"))
        p2.connect(s, m)
        p2.validate(strict=False)  # lenient mode allows partial plans

    def test_sink_with_consumer_rejected(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        k = p.add(operator("CollectionSink"))
        m = p.add(operator("Map"))
        p.connect(a, k)
        p.connect(k, m)
        with pytest.raises(ArityError):
            p.validate(strict=False)

    def test_plan_without_source_rejected(self):
        p = LogicalPlan()
        p.add(operator("Map"))
        with pytest.raises((PlanError, ArityError)):
            p.validate()


class TestLoops:
    def test_loop_spec_validation(self):
        with pytest.raises(PlanError):
            LoopSpec(frozenset({1}), iterations=0)
        with pytest.raises(PlanError):
            LoopSpec(frozenset(), iterations=5)

    def test_add_loop_checks_membership(self, ds):
        p = LogicalPlan()
        p.add(operator("TextFileSource"), dataset=ds)
        with pytest.raises(PlanError):
            p.add_loop([42], iterations=3)

    def test_loop_iterations_multiply_when_nested(self):
        p = build_loop_plan(iterations=10)
        body_op = next(iter(p.loops[0].body))
        p.add_loop([body_op], iterations=3)
        assert p.loop_iterations(body_op) == 30

    def test_in_loop(self):
        p = build_loop_plan()
        body = p.loops[0].body
        for op_id in p.operators:
            assert p.in_loop(op_id) == (op_id in body)


class TestTopology:
    def test_pipeline_counts(self):
        p = build_pipeline(4)
        topo = p.topology_counts()
        assert topo.pipeline == 1
        assert topo.juncture == 0
        assert topo.replicate == 0
        assert topo.loop == 0

    def test_join_plan_counts_match_paper_example(self):
        # The running example shape (Fig. 3a): 3 pipelines + 1 juncture.
        p = build_join_plan()
        topo = p.topology_counts()
        assert topo.juncture == 1
        assert topo.pipeline == 3

    def test_loop_counted(self):
        p = build_loop_plan()
        assert p.topology_counts().loop == 1

    def test_replicate_counted(self, ds):
        p = LogicalPlan()
        a = p.add(operator("TextFileSource"), dataset=ds)
        b = p.add(operator("Map"))
        c1 = p.add(operator("Filter"))
        c2 = p.add(operator("Map"))
        u = p.add(operator("Union"))
        k = p.add(operator("CollectionSink"))
        p.connect(a, b)
        p.connect(b, c1)
        p.connect(b, c2)
        p.connect(c1, u)
        p.connect(c2, u)
        p.connect(u, k)
        topo = p.topology_counts()
        assert topo.replicate == 1
        assert topo.juncture == 1

    def test_scoped_topology_counts(self):
        p = build_join_plan()
        # Scope = the two ops of one source branch: a single pipeline.
        topo = p.topology_counts(scope={0, 1})
        assert topo.pipeline == 1
        assert topo.juncture == 0

    def test_singleton_join_scope_is_juncture(self):
        p = build_join_plan()
        join_id = next(
            i for i, op in p.operators.items() if op.kind_name == "Join"
        )
        topo = p.topology_counts(scope={join_id})
        assert topo.juncture == 1
        assert topo.pipeline == 0


class TestIntrospection:
    def test_sources_and_sinks(self):
        p = build_join_plan()
        assert len(p.sources()) == 2
        assert len(p.sinks()) == 1

    def test_topological_order_respects_edges(self):
        p = build_join_plan()
        order = p.topological_order()
        position = {op: i for i, op in enumerate(order)}
        for u, v in p.edges:
            assert position[u] < position[v]

    def test_signature_stable_and_distinct(self):
        assert build_pipeline(3).signature() == build_pipeline(3).signature()
        assert build_pipeline(3).signature() != build_pipeline(4).signature()

    def test_clone_is_independent(self):
        p = build_pipeline(3)
        q = p.clone()
        q.scale_datasets_to_bytes(1e9)
        src = p.sources()[0]
        assert p.datasets[src].size_bytes != q.datasets[src].size_bytes

    def test_scale_datasets(self):
        p = build_pipeline(3)
        p.scale_datasets_to_bytes(5e8)
        src = p.sources()[0]
        assert p.datasets[src].size_bytes == pytest.approx(5e8)

    def test_set_dataset_requires_source(self, ds):
        p = build_pipeline(3)
        with pytest.raises(PlanError):
            p.set_dataset(1, ds)  # op 1 is a Filter
