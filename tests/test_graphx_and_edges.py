"""Coverage for the GraphX platform and remaining edge paths."""

import numpy as np
import pytest

from repro.core.enumeration import EnumerationContext
from repro.core.enumerator import PriorityEnumerator
from repro.core.features import FeatureSchema
from repro.rheem.datasets import GB, MB
from repro.rheem.execution_plan import ExecutionPlan, feasible_platforms
from repro.rheem.platforms import default_registry
from repro.simulator.executor import SimulatedExecutor
from repro.workloads import crocopr

from conftest import make_linear_cost


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink", "graphx"))


class TestGraphXParticipation:
    def test_graphx_only_feasible_for_pagerank(self, reg):
        plan = crocopr.plan(200 * MB, iterations=10)
        pagerank = next(
            i for i, op in plan.operators.items() if op.kind_name == "PageRank"
        )
        other = next(
            i for i, op in plan.operators.items() if op.kind_name == "Map"
        )
        assert "graphx" in feasible_platforms(plan, reg, pagerank)
        assert "graphx" not in feasible_platforms(plan, reg, other)

    def test_enumeration_considers_graphx_for_pagerank(self, reg):
        plan = crocopr.plan(200 * MB, iterations=10)
        ctx = EnumerationContext(plan, reg)
        pagerank = next(
            i for i, op in plan.operators.items() if op.kind_name == "PageRank"
        )
        assert reg.index("graphx") in ctx.alternatives[pagerank].tolist()

    def test_optimizer_can_emit_graphx_plans(self, reg):
        schema = FeatureSchema(reg)
        # A cost oracle that makes graphx free and everything else costly
        # forces the enumerator to route PageRank through GraphX.
        gx = reg.index("graphx")

        def cost(enum):
            penalty = np.zeros(enum.n_vectors)
            for col in range(enum.assignments.shape[1]):
                penalty += np.where(enum.assignments[:, col] == gx, 0.0, 1.0) * (
                    enum.assignments[:, col] >= 0
                )
            return penalty

        plan = crocopr.plan(200 * MB, iterations=5)
        result = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(plan)
        assert "graphx" in result.execution_plan.platforms_used()

    def test_simulator_executes_graphx_pagerank(self, reg):
        plan = crocopr.plan(1 * GB, iterations=50)
        executor = SimulatedExecutor.default(reg)
        assignment = {i: "flink" for i in plan.operators}
        pagerank = next(
            i for i, op in plan.operators.items() if op.kind_name == "PageRank"
        )
        assignment[pagerank] = "graphx"
        report = executor.execute(ExecutionPlan(plan, assignment, reg))
        assert report.ok
        # GraphX pays its startup on top of flink's.
        assert report.breakdown["startup"] == pytest.approx(4.5 + 9.0)


class TestLosslessnessWithRestrictedPlatforms:
    def test_pruned_optimum_matches_exhaustive_on_crocopr(self, reg):
        """Boundary pruning stays lossless when operators have uneven
        platform support (PageRank on 4 platforms, TableSource on none of
        these, everything else on 3)."""
        schema = FeatureSchema(reg)
        cost = make_linear_cost(schema, seed=13)
        plan = crocopr.plan(200 * MB, iterations=3)
        pruned = PriorityEnumerator(reg, cost, schema=schema).enumerate_plan(plan)
        # Exhaustive on 22 ops is infeasible; compare against a second
        # pruned run with a different priority instead (both lossless).
        other = PriorityEnumerator(
            reg, cost, priority="bottomup", schema=schema
        ).enumerate_plan(plan)
        assert pruned.predicted_cost == pytest.approx(other.predicted_cost)
