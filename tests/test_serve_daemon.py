"""End-to-end tests for the ``repro serve`` daemon.

The daemon's contracts (see ``repro/serve/daemon.py``):

* an ``optimize`` frame is answered with a real execution plan;
* two clients asking for the same fingerprint concurrently share one
  optimization (``serve.jobs_coalesced``);
* past ``max_pending`` accepted requests, new work is refused with a
  structured ``overloaded`` error carrying ``retry_after_ms``;
* no client input — malformed JSON, wrong version — can raise past the
  serve loop: each yields an ``error`` frame on that connection only;
* a client disconnecting mid-request does not hurt the daemon or the
  coalesced siblings of its in-flight work;
* a ``shutdown`` frame (or SIGTERM, tested via subprocess) drains:
  in-flight jobs are answered, new ones get ``shutting_down``, and the
  process exits 0.

The in-process tests host the daemon's event loop in a background
thread (asyncio signal handlers need the main thread, so drain is
driven by the ``shutdown`` frame there; SIGTERM gets a subprocess).
"""

from __future__ import annotations

import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time

import pytest

from repro.resilience import PROFILES, ChaosProfile
from repro.rheem.platforms import synthetic_registry
from repro.rheem.serialization import plan_to_dict
from repro.serve import (
    BatchOptimizationService,
    PlanCache,
    ServeClient,
    resilient_robopt_factory,
)
from repro.serve.protocol import OptimizeRequest
from repro.serve.testing import (
    DaemonHarness,
    count_markers,
    counting_robopt_factory,
    linear_robopt_factory,
    run_daemon,
    sleepy_robopt_factory,
)

from conftest import build_join_plan, build_pipeline

N_PLATFORMS = 2


def _named(plan, name):
    plan.name = name
    return plan


def _plan_request(plan, request_id="", **kwargs):
    return OptimizeRequest(
        request_id=request_id, plan=plan_to_dict(plan), **kwargs
    )


def _service(factory_kwargs=None, **service_kwargs):
    factory = linear_robopt_factory(platforms=N_PLATFORMS, **(factory_kwargs or {}))
    service_kwargs.setdefault("workers", 0)
    return BatchOptimizationService(
        factory, synthetic_registry(N_PLATFORMS), **service_kwargs
    )


class TestOptimizePath:
    def test_optimize_round_trip(self, tmp_path):
        with run_daemon(_service(), unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                response = client.optimize(_plan_request(build_pipeline(3)))
                assert response.ok, response
                assert response.predicted_runtime > 0.0
                assert response.platforms
                assert len(response.assignment) == 5  # source + 3 + sink
                assert response.stats["final_vectors"] >= 1
                assert response.optimizer == "robopt"
                assert response.duration_ms > 0.0
                assert not response.coalesced

    def test_tcp_transport_works_too(self):
        with run_daemon(_service(), host="127.0.0.1", port=0) as harness:
            host, port = harness.address.rsplit(":", 1)
            assert int(port) > 0
            with ServeClient(harness.address) as client:
                assert client.optimize(_plan_request(build_pipeline(2))).ok

    def test_pipelined_requests_on_one_connection(self, tmp_path):
        with run_daemon(_service(), unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                requests = [
                    _plan_request(build_pipeline(2)),
                    _plan_request(build_pipeline(3)),
                    _plan_request(build_join_plan()),
                ]
                responses = client.optimize_many(requests)
                assert len(responses) == 3
                assert all(r.ok for r in responses)
                # answers matched back to their requests by id
                assert [r.request_id for r in responses] == [
                    q.request_id for q in requests
                ]

    def test_size_bytes_scales_the_plan(self, tmp_path):
        with run_daemon(_service(), unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                plan = build_pipeline(3)
                small = client.optimize(_plan_request(plan, size_bytes=2**20))
                large = client.optimize(_plan_request(plan, size_bytes=2**34))
                assert small.ok and large.ok
                assert large.predicted_runtime > small.predicted_runtime

    def test_stats_frame_reports_live_state(self, tmp_path):
        with run_daemon(_service(), unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                client.optimize(_plan_request(build_pipeline(2)))
                stats = client.stats()
                assert stats.counters["serve.daemon.requests"] == 1
                assert stats.counters["serve.daemon.connections"] >= 1
                assert set(stats.latency_ms) == {"p50", "p95", "p99"}
                assert stats.latency_ms["p95"] >= stats.latency_ms["p50"] > 0.0
                assert stats.pending == 0
                assert not stats.draining
                assert stats.uptime_s > 0.0
                # no --feedback: the frame carries an empty feedback dict
                assert stats.feedback == {}

    def test_stats_frame_carries_feedback_health(self, tmp_path):
        """With a feedback controller attached, the stats frame reports
        the drift/retrain health block so operators can watch the loop
        without shell access to the daemon host."""
        from repro.core.features import FeatureSchema
        from repro.ml.drift import DriftMonitor
        from repro.ml.feedback import FeedbackLoop
        from repro.serve.feedback import FeedbackController

        class _InstantExecutor:
            def execute(self, xplan, timeout_s=3600.0):
                class _Report:
                    ok = True
                    status = "success"
                    runtime_s = 12.0
                    detail = ""

                return _Report()

        registry = synthetic_registry(N_PLATFORMS)
        controller = FeedbackController(
            FeedbackLoop(FeatureSchema(registry), n_estimators=3, max_depth=6),
            _InstantExecutor(),
            drift=DriftMonitor(min_samples=2),
            retrain_after=0,
            min_observations=10**9,  # observe-only: never retrain here
        )
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS),
            registry,
            workers=0,
            feedback=controller,
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                client.optimize(_plan_request(build_pipeline(2)))
                stats = client.stats()
                assert stats.feedback["observations_total"] == 1
                assert stats.feedback["model_generation"] == 0
                assert stats.feedback["status"] in ("ok", "warn", "drifted")
                assert stats.feedback["retrains"] == 0


class TestCoalescing:
    def test_two_clients_same_fingerprint_one_optimization(self, tmp_path):
        """The ISSUE acceptance bar: concurrent identical requests from
        *different connections* share one computation."""
        state = tmp_path / "markers"
        state.mkdir()
        factory = counting_robopt_factory(
            platforms=N_PLATFORMS, state_dir=str(state), sleep_s=1.0
        )
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        plan = build_pipeline(3)
        responses = {}

        def ask(name, delay):
            time.sleep(delay)
            with ServeClient(harness.address) as client:
                responses[name] = client.optimize(_plan_request(plan))

        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            threads = [
                threading.Thread(target=ask, args=("owner", 0.0)),
                threading.Thread(target=ask, args=("rider", 0.4)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            stats = ServeClient(harness.address).stats()

        assert responses["owner"].ok and responses["rider"].ok
        # one optimize() ran; the rider's answer is marked coalesced
        assert count_markers(str(state), "opt") == 1
        assert not responses["owner"].coalesced
        assert responses["rider"].coalesced
        assert stats.counters["serve.jobs_coalesced"] == 1
        assert responses["owner"].predicted_runtime == pytest.approx(
            responses["rider"].predicted_runtime
        )

    def test_no_coalesce_flag_disables_sharing(self, tmp_path):
        state = tmp_path / "markers"
        state.mkdir()
        factory = counting_robopt_factory(
            platforms=N_PLATFORMS, state_dir=str(state), sleep_s=0.5
        )
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        plan = build_pipeline(3)
        results = []

        def ask(delay):
            time.sleep(delay)
            with ServeClient(harness.address) as client:
                results.append(client.optimize(_plan_request(plan)))

        with run_daemon(
            service, unix_path=str(tmp_path / "d.sock"), coalesce=False
        ) as harness:
            threads = [threading.Thread(target=ask, args=(d,)) for d in (0.0, 0.2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)

        assert all(r.ok for r in results)
        assert not any(r.coalesced for r in results)
        assert count_markers(str(state), "opt") == 2


class TestAdmissionControl:
    def test_overload_burst_gets_structured_refusals(self, tmp_path):
        """Past ``max_pending``, extra requests are refused immediately
        with ``overloaded`` + ``retry_after_ms`` — not queued, not
        dropped, not an exception."""
        factory = sleepy_robopt_factory(platforms=N_PLATFORMS, sleep_s=1.0)
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        with run_daemon(
            service,
            unix_path=str(tmp_path / "d.sock"),
            max_pending=1,
            coalesce=False,
        ) as harness:
            with ServeClient(harness.address) as client:
                # distinct plans, all marked slow; pipelined in one burst
                requests = [
                    _plan_request(
                        _named(build_pipeline(2 + i), f"sleepy-{i}"), f"r{i}"
                    )
                    for i in range(4)
                ]
                responses = client.optimize_many(requests)
            stats = ServeClient(harness.address).stats()

        accepted = [r for r in responses if r.ok]
        refused = [r for r in responses if not r.ok]
        assert len(accepted) == 1
        assert len(refused) == 3
        for r in refused:
            assert r.code == "overloaded"
            assert r.retry_after_ms >= 50.0
            assert "capacity" in r.error
        assert stats.counters["serve.daemon.overloaded"] == 3

    def test_daemon_recovers_after_the_burst(self, tmp_path):
        factory = sleepy_robopt_factory(platforms=N_PLATFORMS, sleep_s=0.5)
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        with run_daemon(
            service,
            unix_path=str(tmp_path / "d.sock"),
            max_pending=1,
            coalesce=False,
        ) as harness:
            with ServeClient(harness.address) as client:
                burst = client.optimize_many(
                    [
                        _plan_request(_named(build_pipeline(2), "sleepy-a"), "a"),
                        _plan_request(_named(build_pipeline(3), "sleepy-b"), "b"),
                    ]
                )
                assert sorted(r.ok for r in burst) == [False, True]
                # backlog drained: the next request is admitted normally
                after = client.optimize(_plan_request(build_pipeline(4)))
                assert after.ok


class TestHostileInput:
    def _raw_connection(self, address):
        path = address[len("unix:"):]
        sock = socket_module.socket(socket_module.AF_UNIX)
        sock.connect(path)
        return sock

    def test_malformed_frames_get_error_frames_not_disconnects(self, tmp_path):
        with run_daemon(_service(), unix_path=str(tmp_path / "d.sock")) as harness:
            sock = self._raw_connection(harness.address)
            reader = sock.makefile("rb")
            try:
                for hostile in (
                    b"this is not json\n",
                    b"[1, 2, 3]\n",
                    b'{"v": 1, "type": "no_such_frame"}\n',
                    b'{"v": 99, "type": "optimize", "request_id": "old"}\n',
                ):
                    sock.sendall(hostile)
                    import json

                    doc = json.loads(reader.readline())
                    assert doc["type"] == "error"
                    assert doc["code"] in ("bad_request", "version_mismatch")
                # version mismatch is structured AND keeps the request id
                assert doc["code"] == "version_mismatch"
                assert doc["request_id"] == "old"
                # the connection still serves real work afterwards
                request = _plan_request(build_pipeline(2), "alive")
                sock.sendall((request.to_json() + "\n").encode())
                doc = json.loads(reader.readline())
                assert doc["type"] == "result"
                assert doc["request_id"] == "alive"
            finally:
                sock.close()
            stats = ServeClient(harness.address).stats()
            assert stats.counters["serve.daemon.bad_frames"] == 4
            assert "serve.daemon.internal_errors" not in stats.counters

    def test_invalid_plan_document_is_a_bad_request(self, tmp_path):
        with run_daemon(_service(), unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                response = client.optimize(
                    OptimizeRequest(plan={"operators": "garbage"})
                )
                assert not response.ok
                assert response.code == "bad_request"

    def test_client_disconnect_mid_request_does_not_hurt_the_daemon(
        self, tmp_path
    ):
        factory = sleepy_robopt_factory(platforms=N_PLATFORMS, sleep_s=1.0)
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            # fire an optimize and hang up without reading the answer
            sock = self._raw_connection(harness.address)
            request = _plan_request(_named(build_pipeline(3), "sleepy-gone"))
            sock.sendall((request.to_json() + "\n").encode())
            time.sleep(0.2)
            sock.close()
            # the daemon finishes the orphaned job and keeps serving
            deadline = time.monotonic() + 20.0
            while harness.daemon.pending and time.monotonic() < deadline:
                time.sleep(0.05)
            assert harness.daemon.pending == 0
            with ServeClient(harness.address) as client:
                assert client.optimize(_plan_request(build_pipeline(2))).ok


class TestDeadlines:
    def test_deadline_degrades_instead_of_failing(self, tmp_path):
        factory = resilient_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                response = client.optimize(
                    _plan_request(build_pipeline(4), deadline_ms=0.0)
                )
                assert response.ok
                assert response.degraded  # best-effort, flagged as such
                # still a complete assignment over every operator
                assert len(response.assignment) == 6

    def test_degraded_answers_are_not_published_to_the_cache(self, tmp_path):
        factory = resilient_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(
            factory,
            synthetic_registry(N_PLATFORMS),
            workers=0,
            cache=PlanCache(),
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                plan = build_pipeline(3)
                first = client.optimize(_plan_request(plan, deadline_ms=0.0))
                assert first.ok and first.degraded
                # a degraded answer must not satisfy later lookups
                second = client.optimize(_plan_request(plan, deadline_ms=0.0))
                assert second.ok and not second.cached
                # full-fidelity results do publish...
                full = client.optimize(_plan_request(plan))
                assert full.ok and not full.degraded and not full.cached
                # ...and the repeat is a hit
                again = client.optimize(_plan_request(plan))
                assert again.ok and again.cached
                assert not again.degraded


class TestDrain:
    def test_shutdown_frame_drains_and_refuses_new_work(self, tmp_path):
        factory = sleepy_robopt_factory(platforms=N_PLATFORMS, sleep_s=1.0)
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        harness = DaemonHarness(
            service, unix_path=str(tmp_path / "d.sock")
        ).start()
        inflight = {}

        def slow_ask():
            with ServeClient(harness.address) as client:
                inflight["response"] = client.optimize(
                    _plan_request(_named(build_pipeline(3), "sleepy-drain"))
                )

        worker = threading.Thread(target=slow_ask)
        worker.start()
        time.sleep(0.3)  # the slow job is in flight
        with ServeClient(harness.address) as control:
            ack = control.shutdown()
            assert ack.draining
            assert ack.pending == 1
            # draining: new optimize frames are refused...
            refused = control.optimize(_plan_request(build_pipeline(2)))
            assert not refused.ok
            assert refused.code == "shutting_down"
            # ...but introspection still answers
            assert control.stats().draining
        worker.join(timeout=30.0)
        # the in-flight job was completed, not dropped
        assert inflight["response"].ok
        assert harness.stop() == 0  # clean drain exit

    def test_idle_shutdown_is_immediate_and_clean(self, tmp_path):
        harness = DaemonHarness(
            _service(), unix_path=str(tmp_path / "d.sock")
        ).start()
        with ServeClient(harness.address) as client:
            assert client.shutdown().draining
        assert harness.stop() == 0


@pytest.mark.slow
class TestSigtermSubprocess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The real process contract: `repro serve` under SIGTERM answers
        what it accepted and exits 0 ("daemon drained cleanly")."""
        socket_path = str(tmp_path / "daemon.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                socket_path,
                "--model",
                str(tmp_path / "no-model.pkl"),
                "--workers",
                "0",
                "--no-cache",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while not os.path.exists(socket_path):
                assert proc.poll() is None, proc.stdout.read()
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.1)
            with ServeClient(f"unix:{socket_path}") as client:
                response = client.optimize(
                    OptimizeRequest(workload="WordCount", size_bytes=2**20)
                )
                assert response.ok, response
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained cleanly" in out


class TestDaemonUnderChaos:
    """The resilience armor holds behind the network front door too."""

    def test_model_outage_never_costs_availability(self, tmp_path):
        factory = resilient_robopt_factory(
            platforms=N_PLATFORMS, chaos=PROFILES["model-outage"]
        )
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                responses = client.optimize_many(
                    [
                        _plan_request(build_pipeline(2 + i % 3), f"j{i}")
                        for i in range(6)
                    ]
                )
            stats = ServeClient(harness.address).stats()
        assert all(r.ok for r in responses)
        assert "serve.daemon.internal_errors" not in stats.counters

    def test_worker_death_is_a_structured_error_not_an_outage(self, tmp_path):
        """With ``worker_death_rate=1.0`` in serial mode every job dies;
        each client gets an ``optimization_failed`` error frame and the
        daemon keeps serving."""
        factory = resilient_robopt_factory(
            platforms=N_PLATFORMS, chaos=ChaosProfile(worker_death_rate=1.0)
        )
        service = BatchOptimizationService(
            factory, synthetic_registry(N_PLATFORMS), workers=0
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                first = client.optimize(_plan_request(build_pipeline(2), "a"))
                second = client.optimize(_plan_request(build_pipeline(3), "b"))
                stats = client.stats()
        for response in (first, second):
            assert not response.ok
            assert response.code == "optimization_failed"
            assert "worker death" in response.error
        # failures answered per-request; the loop itself never broke
        assert stats.counters["serve.daemon.requests"] == 2
        assert "serve.daemon.internal_errors" not in stats.counters
