"""The plan cache: LRU bound, persistence, counters, defensive copies.

Also holds the regression tests for the two aliasing hazards this layer
closed: :meth:`PlanVectorEnumeration.select` returning *views* of its
source matrices, and cache hits handing every caller the *same* result
object.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import FeatureSchema
from repro.core.optimizer import Robopt
from repro.exceptions import ReproError
from repro.obs import Tracer, use_tracer
from repro.rheem.platforms import synthetic_registry
from repro.serve import PlanCache, plan_fingerprint
from repro.serve.cache import CACHE_FORMAT_VERSION, copy_result
from repro.serve.testing import LinearRuntimeModel

from conftest import build_pipeline


@pytest.fixture
def registry():
    return synthetic_registry(2)


@pytest.fixture
def optimizer(registry):
    schema = FeatureSchema(registry)
    return Robopt(registry, LinearRuntimeModel(schema.n_features, seed=1), schema=schema)


def _result(optimizer, n_ops=3):
    return optimizer.optimize(build_pipeline(n_ops))


class TestLRU:
    def test_size_is_bounded(self, optimizer):
        cache = PlanCache(max_entries=4)
        result = _result(optimizer)
        for i in range(10):
            cache.put(f"fp{i}", result)
        assert len(cache) == 4
        assert cache.stats.evictions == 6
        assert cache.fingerprints() == ["fp6", "fp7", "fp8", "fp9"]

    def test_get_refreshes_recency(self, optimizer):
        cache = PlanCache(max_entries=2)
        result = _result(optimizer)
        cache.put("a", result)
        cache.put("b", result)
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", result)  # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self, optimizer):
        cache = PlanCache(max_entries=2)
        result = _result(optimizer)
        cache.put("a", result)
        cache.put("b", result)
        cache.put("a", result)  # refresh, not insert
        cache.put("c", result)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ReproError):
            PlanCache(max_entries=0)


class TestCounters:
    def test_hit_miss_accounting(self, optimizer):
        cache = PlanCache(max_entries=8)
        result = _result(optimizer)
        assert cache.get("fp") is None
        cache.put("fp", result)
        assert cache.get("fp") is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.as_dict()["hit_rate"] == 0.5

    def test_counters_mirrored_into_tracer(self, optimizer):
        cache = PlanCache(max_entries=1)
        result = _result(optimizer)
        tracer = Tracer()
        with use_tracer(tracer):
            cache.get("a")  # miss
            cache.put("a", result)
            cache.get("a")  # hit
            cache.put("b", result)  # evicts "a"
        assert tracer.counters["serve.cache.misses"] == 1
        assert tracer.counters["serve.cache.hits"] == 1
        assert tracer.counters["serve.cache.puts"] == 2
        assert tracer.counters["serve.cache.evictions"] == 1


class TestMismatch:
    def test_never_returns_under_a_different_fingerprint(self, optimizer, registry):
        """A hit is only ever the entry stored under that exact key: two
        structurally different plans have different fingerprints and
        therefore never see each other's cached decisions."""
        cache = PlanCache(max_entries=8)
        short, long = build_pipeline(3), build_pipeline(5)
        fp_short = plan_fingerprint(short, registry=registry)
        fp_long = plan_fingerprint(long, registry=registry)
        assert fp_short != fp_long
        result_short = optimizer.optimize(short)
        cache.put(fp_short, result_short)
        assert cache.get(fp_long) is None
        hit = cache.get(fp_short)
        assert hit.execution_plan.plan.signature() == short.signature()


class TestPersistence:
    def test_round_trip(self, tmp_path, optimizer, registry):
        cache = PlanCache(max_entries=8)
        result = _result(optimizer)
        fp = plan_fingerprint(result.execution_plan.plan, registry=registry)
        cache.put(fp, result)
        path = cache.save(tmp_path / "cache.json")

        loaded = PlanCache.load(path, registry)
        assert len(loaded) == 1
        hit = loaded.get(fp)
        assert hit is not None
        assert hit.predicted_runtime == result.predicted_runtime
        assert hit.execution_plan.assignment == result.execution_plan.assignment
        # Loading is not a lifetime event of the new cache.
        assert loaded.stats.puts == 0

    def test_load_respects_smaller_bound(self, tmp_path, optimizer, registry):
        cache = PlanCache(max_entries=8)
        result = _result(optimizer)
        for i in range(6):
            cache.put(f"fp{i}", result)
        path = cache.save(tmp_path / "cache.json")
        loaded = PlanCache.load(path, registry, max_entries=2)
        assert len(loaded) == 2
        # The most recently used entries survive.
        assert loaded.fingerprints() == ["fp4", "fp5"]

    def test_fingerprint_version_mismatch_drops_entries(
        self, tmp_path, optimizer, registry
    ):
        import json

        cache = PlanCache(max_entries=8)
        cache.put("fp", _result(optimizer))
        path = cache.save(tmp_path / "cache.json")
        doc = json.loads(path.read_text())
        doc["fingerprint_version"] = 999
        path.write_text(json.dumps(doc))
        loaded = PlanCache.load(path, registry)
        assert len(loaded) == 0  # stale keys can never match: drop them

    def test_unknown_format_version_rejected(self, tmp_path, optimizer, registry):
        import json

        cache = PlanCache(max_entries=8)
        cache.put("fp", _result(optimizer))
        path = cache.save(tmp_path / "cache.json")
        doc = json.loads(path.read_text())
        doc["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            PlanCache.load(path, registry)


class TestDefensiveCopies:
    def test_hits_are_independent_objects(self, optimizer):
        cache = PlanCache(max_entries=8)
        cache.put("fp", _result(optimizer))
        first = cache.get("fp")
        # A caller scribbling over its result ...
        first.execution_plan.assignment[0] = "corrupted"
        first.execution_plan.plan.operators[1].selectivity = -123.0
        # ... must not leak into what the next caller receives.
        second = cache.get("fp")
        assert second.execution_plan.assignment[0] != "corrupted"
        assert second.execution_plan.plan.operators[1].selectivity != -123.0

    def test_put_detaches_from_the_source(self, optimizer):
        cache = PlanCache(max_entries=8)
        result = _result(optimizer)
        cache.put("fp", result)
        result.execution_plan.assignment[0] = "mutated-after-put"
        assert cache.get("fp").execution_plan.assignment[0] != "mutated-after-put"

    def test_copy_result_drops_enumeration_alias(self, optimizer):
        result = _result(optimizer)
        assert result.final_enumeration is not None
        clone = copy_result(result)
        assert clone.final_enumeration is None
        assert clone.stats is not result.stats
        assert clone.stats.as_dict() == result.stats.as_dict()

    def test_select_never_aliases_the_source(self, optimizer):
        """Regression: ``select`` with slice-like indices used to return
        numpy *views*; mutating the selection corrupted the enumeration
        it came from (and anything cached from it)."""
        enumeration = _result(optimizer, n_ops=4).final_enumeration
        rows = np.arange(min(2, enumeration.features.shape[0]))
        picked = enumeration.select(rows)
        assert picked.features.base is None
        assert picked.assignments.base is None
        before = enumeration.features[rows].copy()
        picked.features[:] = -1.0
        picked.assignments[:] = -1
        np.testing.assert_array_equal(enumeration.features[rows], before)
