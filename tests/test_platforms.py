"""Tests for platforms and the platform registry."""

import pytest

from repro.exceptions import PlatformError
from repro.rheem.platforms import (
    CATEGORY_DATABASE,
    CATEGORY_DISTRIBUTED,
    CATEGORY_LOCAL,
    Platform,
    PlatformRegistry,
    default_registry,
    synthetic_registry,
)


class TestPlatform:
    def test_supports_everything_by_default(self):
        p = Platform("x")
        assert p.supports("Map")
        assert p.supports("Join")

    def test_supported_kinds_whitelist(self):
        p = Platform("db", CATEGORY_DATABASE, frozenset({"Filter", "Join"}))
        assert p.supports("Filter")
        assert not p.supports("Map")

    def test_unsupported_kinds_blacklist(self):
        p = Platform("x", unsupported_kinds=frozenset({"TableSource"}))
        assert p.supports("Map")
        assert not p.supports("TableSource")

    def test_blacklist_overrides_whitelist(self):
        p = Platform(
            "x",
            supported_kinds=frozenset({"Map"}),
            unsupported_kinds=frozenset({"Map"}),
        )
        assert not p.supports("Map")

    def test_invalid_category_rejected(self):
        with pytest.raises(PlatformError):
            Platform("x", "quantum")


class TestPlatformRegistry:
    def test_order_is_preserved(self):
        reg = PlatformRegistry([Platform("a"), Platform("b"), Platform("c")])
        assert reg.names == ("a", "b", "c")
        assert reg.index("b") == 1

    def test_lookup_by_name_and_index(self):
        reg = synthetic_registry(3)
        assert reg["platform1"].name == "platform1"
        assert reg[2].name == "platform2"

    def test_unknown_platform_raises(self):
        reg = synthetic_registry(2)
        with pytest.raises(PlatformError):
            reg.index("nope")
        with pytest.raises(PlatformError):
            reg["nope"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlatformError):
            PlatformRegistry([Platform("a"), Platform("a")])

    def test_empty_registry_rejected(self):
        with pytest.raises(PlatformError):
            PlatformRegistry([])

    def test_contains_and_len(self):
        reg = synthetic_registry(4)
        assert len(reg) == 4
        assert "platform0" in reg
        assert "spark" not in reg

    def test_supporting_filters_platforms(self):
        reg = default_registry(("java", "spark", "postgres"))
        names = [p.name for p in reg.supporting("TableSource")]
        assert names == ["postgres"]
        names = [p.name for p in reg.supporting("Map")]
        assert "postgres" not in names

    def test_restricted_subsets_in_order(self):
        reg = default_registry(("java", "spark", "flink"))
        sub = reg.restricted(["flink", "java"])
        assert sub.names == ("flink", "java")


class TestDefaultRegistry:
    def test_default_trio(self):
        reg = default_registry()
        assert reg.names == ("java", "spark", "flink")

    def test_categories(self):
        reg = default_registry(("java", "spark", "postgres", "graphx"))
        assert reg["java"].category == CATEGORY_LOCAL
        assert reg["spark"].category == CATEGORY_DISTRIBUTED
        assert reg["postgres"].category == CATEGORY_DATABASE

    def test_graphx_only_runs_pagerank(self):
        reg = default_registry(("graphx",))
        assert reg["graphx"].supports("PageRank")
        assert not reg["graphx"].supports("Map")

    def test_postgres_is_relational_only(self):
        reg = default_registry(("postgres",))
        pg = reg["postgres"]
        assert pg.supports("Join")
        assert pg.supports("TableSource")
        assert not pg.supports("FlatMap")
        assert not pg.supports("PageRank")
        assert not pg.supports("Cache")

    def test_only_postgres_reads_tables(self):
        reg = default_registry(("java", "spark", "flink", "postgres"))
        assert [p.name for p in reg.supporting("TableSource")] == ["postgres"]

    def test_unknown_name_raises(self):
        with pytest.raises(PlatformError):
            default_registry(("java", "oracle"))


class TestSyntheticRegistry:
    def test_platform0_is_local_rest_distributed(self):
        reg = synthetic_registry(4)
        assert reg["platform0"].category == CATEGORY_LOCAL
        for i in range(1, 4):
            assert reg[f"platform{i}"].category == CATEGORY_DISTRIBUTED

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_sizes(self, k):
        assert len(synthetic_registry(k)) == k

    def test_zero_platforms_rejected(self):
        with pytest.raises(PlatformError):
            synthetic_registry(0)
