"""Tests for the benchmark table renderer."""

from repro.bench.tables import format_table


class TestFormatTable:
    def test_contains_title_headers_rows(self):
        text = format_table(
            "Table I", ["a", "bb"], [[1, 2.5], ["x", float("inf")]]
        )
        assert "=== Table I ===" in text
        assert "a" in text and "bb" in text
        assert "2.500" in text
        assert "inf" in text

    def test_number_formatting(self):
        text = format_table("t", ["v"], [[12345.6], [12.34], [1.2345], [float("nan")]])
        assert "12,346" in text
        assert "12.3" in text
        assert "1.234" in text  # three decimals for small floats
        assert "-" in text  # NaN placeholder

    def test_note_appended(self):
        text = format_table("t", ["v"], [[1]], note="paper reports 2x")
        assert text.endswith("note: paper reports 2x")

    def test_column_alignment(self):
        text = format_table("t", ["col"], [["verylongvalue"], ["x"]])
        lines = text.splitlines()
        data_lines = lines[3:]
        assert len(data_lines[0]) >= len("verylongvalue")
