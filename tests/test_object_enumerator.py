"""Tests for the object-based enumeration (the baselines' engine)."""

import numpy as np
import pytest

from repro.baselines.object_enumerator import ObjectEnumerator
from repro.core.features import FeatureSchema
from repro.core.enumerator import PriorityEnumerator
from repro.exceptions import EnumerationError
from repro.rheem.platforms import synthetic_registry

from conftest import build_join_plan, build_loop_plan, build_pipeline, make_linear_cost


def object_linear_cost(schema):
    """Same decomposable cost as make_linear_cost, via encode_partial."""
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.0, 1.0, schema.n_features)

    def batch_cost(plan, subplans, stats):
        return np.asarray(
            [
                schema.encode_partial(plan, sp.scope, sp.assignment) @ weights
                for sp in subplans
            ]
        )

    return batch_cost


def vector_linear_cost(schema):
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.0, 1.0, schema.n_features)

    def cost(enumeration):
        return enumeration.features @ weights

    return cost


@pytest.fixture
def reg():
    return synthetic_registry(2)


class TestAgreementWithVectorized:
    """Object and vectorized enumeration must find the same optimum when
    driven by the same (decomposable) cost — the paper's fairness setup."""

    @pytest.mark.parametrize(
        "builder", [lambda: build_pipeline(3), build_join_plan, build_loop_plan]
    )
    def test_same_optimal_plan(self, reg, builder):
        plan = builder()
        schema = FeatureSchema(reg)
        obj = ObjectEnumerator(reg, object_linear_cost(schema))
        vec = PriorityEnumerator(reg, vector_linear_cost(schema), schema=schema)
        r_obj = obj.enumerate_plan(plan)
        r_vec = vec.enumerate_plan(plan)
        assert r_obj.predicted_runtime == pytest.approx(r_vec.predicted_cost)
        assert r_obj.execution_plan == r_vec.execution_plan

    @pytest.mark.parametrize("priority", ["robopt", "topdown", "bottomup"])
    def test_priorities_supported(self, reg, priority):
        plan = build_pipeline(3)
        schema = FeatureSchema(reg)
        result = ObjectEnumerator(
            reg, object_linear_cost(schema), priority=priority
        ).enumerate_plan(plan)
        assert result.execution_plan is not None

    def test_unknown_priority_rejected(self, reg):
        with pytest.raises(EnumerationError):
            ObjectEnumerator(reg, lambda *a: None, priority="diagonal")


class TestPruningBehaviour:
    def test_pruning_reduces_subplans(self, reg):
        plan = build_pipeline(5)
        schema = FeatureSchema(reg)
        cost = object_linear_cost(schema)
        pruned = ObjectEnumerator(reg, cost).enumerate_plan(plan)
        exhaustive = ObjectEnumerator(reg, cost, pruning=False).enumerate_plan(plan)
        assert pruned.stats.vectors_created < exhaustive.stats.vectors_created
        assert pruned.stats.vectors_pruned > 0
        assert exhaustive.stats.vectors_pruned == 0
        assert pruned.predicted_runtime == pytest.approx(exhaustive.predicted_runtime)

    def test_max_subplans_guard(self, reg):
        plan = build_pipeline(6)
        schema = FeatureSchema(reg)
        enum = ObjectEnumerator(
            reg, object_linear_cost(schema), pruning=False, max_subplans=50
        )
        with pytest.raises(EnumerationError):
            enum.enumerate_plan(plan)

    def test_stats_populated(self, reg):
        plan = build_pipeline(3)
        schema = FeatureSchema(reg)
        result = ObjectEnumerator(reg, object_linear_cost(schema)).enumerate_plan(plan)
        s = result.stats
        assert s.singleton_vectors == 2 * plan.n_operators
        assert s.merges > 0
        assert s.rows_predicted > 0
        assert s.latency_s > 0
