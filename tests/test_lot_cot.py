"""Tests for the LOT and COT auxiliary tables (§IV-C, Fig. 6)."""

import pytest

from repro.core.lot_cot import ConversionOperatorsTable, LogicalOperatorsTable
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.platforms import default_registry

from conftest import build_join_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


class TestLot:
    def test_one_row_per_operator(self):
        plan = build_join_plan()
        lot = LogicalOperatorsTable(plan)
        assert len(lot) == plan.n_operators

    def test_rows_capture_structure(self):
        plan = build_join_plan()
        lot = LogicalOperatorsTable(plan)
        for row in lot.rows:
            assert row.parents == tuple(plan.parents(row.op_id))
            assert row.kind == plan.operators[row.op_id].kind_name

    def test_lookup_by_id(self):
        plan = build_pipeline(2)
        lot = LogicalOperatorsTable(plan)
        assert lot[0].kind == "TextFileSource"

    def test_render_mentions_all_labels(self):
        plan = build_join_plan()
        text = LogicalOperatorsTable(plan).render()
        for op in plan.operators.values():
            assert op.label in text


class TestCot:
    def test_single_platform_plan_has_empty_cot(self, reg):
        plan = build_pipeline(2)
        cot = ConversionOperatorsTable(single_platform_plan(plan, "java", reg))
        assert len(cot) == 0

    def test_cot_rows_match_conversions(self, reg):
        plan = build_pipeline(2)
        assignment = {0: "spark", 1: "spark", 2: "java", 3: "java"}
        xplan = ExecutionPlan(plan, assignment, reg)
        cot = ConversionOperatorsTable(xplan)
        assert len(cot) == len(xplan.conversions())
        assert cot.rows[0].kind == "collect"
        assert cot.rows[0].edge == (1, 2)

    def test_render(self, reg):
        plan = build_pipeline(2)
        assignment = {0: "spark", 1: "spark", 2: "java", 3: "java"}
        text = ConversionOperatorsTable(ExecutionPlan(plan, assignment, reg)).render()
        assert "spark.collect" in text
