"""The template cache tier: fingerprint properties, candidates, selector.

The template fingerprint is the tier's correctness boundary, with a
*different* contract than the exact fingerprint: cardinalities must NOT
enter the hash (that is the whole point — parametric instantiations of
one query share a template), while every structural field still must
(kinds, selectivities, edges, loops, platform alphabet). The cache
itself mirrors :class:`PlanCache`'s invariants — LRU bound, counter
mirroring, versioned persistence, corrupt-file tolerance — plus the
template-specific machinery: candidate-set maintenance, guardrailed
re-costing, and the learned selector's fallback discipline.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import FeatureSchema
from repro.core.optimizer import Robopt
from repro.exceptions import ReproError
from repro.obs import Tracer, use_tracer
from repro.rheem.datasets import DatasetProfile
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import default_registry, synthetic_registry
from repro.serve import TemplateCache, template_features, template_fingerprint
from repro.serve.template import TEMPLATE_CACHE_FORMAT_VERSION
from repro.serve.testing import LinearRuntimeModel

from conftest import build_pipeline

_UNARY = ("Map", "Filter", "FlatMap", "ReduceBy", "Sort", "Distinct")


@st.composite
def pipeline_specs(draw, max_middle=5):
    """A random pipeline described as data (kinds, selectivities, card)."""
    kinds = draw(st.lists(st.sampled_from(_UNARY), min_size=1, max_size=max_middle))
    sels = draw(
        st.lists(
            st.floats(0.05, 2.0, allow_nan=False),
            min_size=len(kinds),
            max_size=len(kinds),
        )
    )
    cardinality = draw(st.floats(1e3, 1e8, allow_nan=False))
    return kinds, sels, cardinality


def _build(kinds, sels, cardinality, tuple_size=100.0, name="tfp"):
    plan = LogicalPlan(name)
    ops = [
        plan.add(
            operator("TextFileSource"),
            dataset=DatasetProfile("d", cardinality, tuple_size),
        )
    ]
    for kind, sel in zip(kinds, sels):
        ops.append(plan.add(operator(kind, selectivity=sel)))
    ops.append(plan.add(operator("CollectionSink")))
    plan.chain(*ops)
    return plan


@pytest.fixture
def registry():
    return synthetic_registry(2)


@pytest.fixture
def optimizer(registry):
    schema = FeatureSchema(registry)
    return Robopt(registry, LinearRuntimeModel(schema.n_features, seed=1), schema=schema)


def _recoster(optimizer):
    """The same re-cost closure the batch service builds."""

    def recost(plan, assignment):
        xplan = ExecutionPlan(plan, assignment, optimizer.registry)
        features = optimizer.schema.encode_execution_plan(xplan)
        cost = float(optimizer.model.predict(features[None, :])[0])
        return cost, xplan

    return recost


class TestCardinalityInvariance:
    """The defining property: cardinalities do not enter the template key."""

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs(), st.floats(1e0, 1e10, allow_nan=False))
    def test_any_cardinality_change_keeps_the_template(self, spec, other_card):
        kinds, sels, card = spec
        a = _build(kinds, sels, card)
        b = _build(kinds, sels, other_card)
        assert template_fingerprint(a) == template_fingerprint(b)

    @settings(max_examples=25, deadline=None)
    @given(pipeline_specs(), st.floats(1.0, 1e4, allow_nan=False))
    def test_tuple_size_change_keeps_the_template(self, spec, tuple_size):
        kinds, sels, card = spec
        assert template_fingerprint(
            _build(kinds, sels, card)
        ) == template_fingerprint(_build(kinds, sels, card, tuple_size=tuple_size))

    @settings(max_examples=25, deadline=None)
    @given(pipeline_specs())
    def test_clone_and_rename_keep_the_template(self, spec):
        kinds, sels, card = spec
        plan = _build(kinds, sels, card)
        assert template_fingerprint(plan) == template_fingerprint(plan.clone())
        assert template_fingerprint(plan) == template_fingerprint(
            _build(kinds, sels, card, name="other-name")
        )

    def test_fixed_output_cardinality_value_is_stripped_but_presence_kept(self):
        def looped(fixed):
            plan = LogicalPlan("loop")
            src = plan.add(
                operator("TextFileSource"),
                dataset=DatasetProfile("d", 1e5, 100.0),
            )
            body = plan.add(operator("ReduceBy", fixed_output_cardinality=fixed))
            sink = plan.add(operator("CollectionSink"))
            plan.chain(src, body, sink)
            return plan

        # The *value* is a parameter: stripped.
        assert template_fingerprint(looped(64)) == template_fingerprint(looped(4096))
        # Its *presence* changes downstream cardinality structure: kept.
        def plain():
            plan = LogicalPlan("plain")
            src = plan.add(
                operator("TextFileSource"),
                dataset=DatasetProfile("d", 1e5, 100.0),
            )
            body = plan.add(operator("ReduceBy"))
            sink = plan.add(operator("CollectionSink"))
            plan.chain(src, body, sink)
            return plan

        assert template_fingerprint(looped(64)) != template_fingerprint(plain())


class TestStructuralSensitivity:
    """Every structural field still enters the hash exactly."""

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs(), st.integers(0, 10**6))
    def test_operator_kind_perturbation_changes_hash(self, spec, pick):
        kinds, sels, card = spec
        index = pick % len(kinds)
        replacement = next(k for k in _UNARY if k != kinds[index])
        perturbed = list(kinds)
        perturbed[index] = replacement
        assert template_fingerprint(_build(kinds, sels, card)) != template_fingerprint(
            _build(perturbed, sels, card)
        )

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_selectivity_change_changes_hash(self, spec):
        kinds, sels, card = spec
        perturbed = list(sels)
        perturbed[0] = sels[0] + 0.5
        assert template_fingerprint(_build(kinds, sels, card)) != template_fingerprint(
            _build(kinds, perturbed, card)
        )

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_topology_perturbation_changes_hash(self, spec):
        kinds, sels, card = spec
        base = _build(kinds, sels, card)
        longer = _build(kinds + ["Map"], sels + [1.0], card)
        assert template_fingerprint(base) != template_fingerprint(longer)

    @settings(max_examples=25, deadline=None)
    @given(pipeline_specs())
    def test_platform_alphabet_changes_hash(self, spec):
        kinds, sels, card = spec
        plan = _build(kinds, sels, card)
        fps = {
            template_fingerprint(plan, registry=reg)
            for reg in (
                synthetic_registry(2),
                synthetic_registry(3),
                default_registry(("java", "spark")),
            )
        }
        assert len(fps) == 3
        assert template_fingerprint(plan) not in fps

    def test_loop_iterations_change_hash(self):
        def looped(iterations):
            plan = LogicalPlan("loop")
            src = plan.add(
                operator("TextFileSource"),
                dataset=DatasetProfile("d", 1e5, 100.0),
            )
            body = plan.add(operator("Map"))
            sink = plan.add(operator("CollectionSink"))
            plan.chain(src, body, sink)
            plan.add_loop([body], iterations)
            return plan

        assert template_fingerprint(looped(3)) != template_fingerprint(looped(7))

    def test_template_is_coarser_than_exact_fingerprint(self, registry):
        """Same template, far-apart cardinalities: the exact fingerprint
        separates what the template fingerprint deliberately merges."""
        from repro.serve import plan_fingerprint

        a, b = build_pipeline(3, 1e3), build_pipeline(3, 1e8)
        assert plan_fingerprint(a, registry) != plan_fingerprint(b, registry)
        assert template_fingerprint(a, registry) == template_fingerprint(b, registry)


class TestFeatures:
    def test_log_cardinality_features(self):
        feats = template_features(build_pipeline(3, 1e6))
        assert feats.shape == (2,)  # one source: (card, tuple_size)
        assert feats[0] == pytest.approx(np.log1p(1e6))
        assert feats[1] == pytest.approx(np.log1p(100.0))

    def test_non_finite_profile_values_are_sanitized(self):
        plan = LogicalPlan("bad")
        src = plan.add(
            operator("TextFileSource"),
            dataset=DatasetProfile("d", float("nan"), float("inf")),
        )
        sink = plan.add(operator("CollectionSink"))
        plan.chain(src, sink)
        feats = template_features(plan)
        assert np.all(np.isfinite(feats))


class TestCandidatesAndLRU:
    def test_observe_then_get_single_candidate(self, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        tfp = template_fingerprint(plan, registry)
        cache.observe(tfp, plan, optimizer.optimize(plan))
        unseen = build_pipeline(3, 3.7e6)  # same template, fresh cardinality
        hit = cache.get(tfp, unseen, _recoster(optimizer))
        assert hit is not None
        # The served plan is the *request's* plan under the remembered
        # assignment, re-costed at the request's cardinalities.
        assert hit.execution_plan.plan.signature() == unseen.signature()
        direct = optimizer.optimize(unseen)
        assert hit.predicted_runtime == pytest.approx(direct.predicted_runtime)

    def test_duplicate_assignment_refreshes_not_appends(self, optimizer, registry):
        cache = TemplateCache()
        tfp = template_fingerprint(build_pipeline(3, 1e4), registry)
        for card in (1e4, 1e5, 1e6):
            plan = build_pipeline(3, card)
            cache.observe(tfp, plan, optimizer.optimize(plan))
        # The linear model's optimum is scale-invariant here, so all three
        # observations carry the same assignment: one candidate.
        assert len(cache.candidates(tfp)) == 1
        assert cache.stats.puts == 3

    def test_candidate_bound_evicts_oldest(self, optimizer, registry):
        cache = TemplateCache(max_candidates=2)
        plan = build_pipeline(2, 1e4)
        tfp = template_fingerprint(plan, registry)
        result = optimizer.optimize(plan)
        # Forge three distinct assignments for one template.
        names = list(registry.names)
        for i in range(3):
            forged = result.copy()
            for op_id in forged.execution_plan.assignment:
                forged.execution_plan.assignment[op_id] = names[i % len(names)]
            cache.observe(tfp, plan, forged)
        assert len(cache.candidates(tfp)) == 2

    def test_template_lru_bound(self, optimizer, registry):
        cache = TemplateCache(max_templates=2)
        result = optimizer.optimize(build_pipeline(3, 1e4))
        plan = build_pipeline(3, 1e4)
        for i in range(4):
            cache.observe(f"tfp{i}", plan, result)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert cache.fingerprints() == ["tfp2", "tfp3"]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ReproError):
            TemplateCache(max_templates=0)
        with pytest.raises(ReproError):
            TemplateCache(max_candidates=0)
        with pytest.raises(ReproError):
            TemplateCache(guardrail=0.9)

    def test_counters_mirrored_into_tracer(self, optimizer, registry):
        cache = TemplateCache(max_templates=1)
        plan = build_pipeline(3, 1e4)
        tfp = template_fingerprint(plan, registry)
        result = optimizer.optimize(plan)
        tracer = Tracer()
        with use_tracer(tracer):
            assert cache.get(tfp, plan, _recoster(optimizer)) is None  # miss
            cache.observe(tfp, plan, result)
            assert cache.get(tfp, plan, _recoster(optimizer)) is not None
            cache.observe("other", plan, result)  # evicts tfp
        assert tracer.counters["serve.template.misses"] == 1
        assert tracer.counters["serve.template.hits"] == 1
        assert tracer.counters["serve.template.puts"] == 2
        assert tracer.counters["serve.template.evictions"] == 1

    def test_hits_are_defensive_copies(self, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        tfp = template_fingerprint(plan, registry)
        cache.observe(tfp, plan, optimizer.optimize(plan))
        first = cache.get(tfp, plan, _recoster(optimizer))
        first.execution_plan.assignment[0] = "corrupted"
        second = cache.get(tfp, plan, _recoster(optimizer))
        assert second.execution_plan.assignment[0] != "corrupted"


class TestGuardrailAndSelector:
    def test_recost_failure_is_a_miss_never_a_raise(self, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        tfp = template_fingerprint(plan, registry)
        cache.observe(tfp, plan, optimizer.optimize(plan))

        def broken(plan, assignment):
            raise RuntimeError("model outage")

        assert cache.get(tfp, plan, broken) is None
        assert cache.stats.recost_errors == 1
        assert cache.stats.hits == 0

    def test_non_finite_recost_is_a_miss(self, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        tfp = template_fingerprint(plan, registry)
        cache.observe(tfp, plan, optimizer.optimize(plan))
        assert cache.get(tfp, plan, lambda p, a: (float("nan"), None)) is None
        assert cache.stats.recost_errors == 1

    def test_multi_candidate_without_selector_falls_back(self, optimizer, registry):
        """Two candidates, too few observations to train: low confidence,
        no hit — the caller must enumerate."""
        cache = TemplateCache(min_observations=10)
        plan = build_pipeline(2, 1e4)
        tfp = template_fingerprint(plan, registry)
        result = optimizer.optimize(plan)
        names = list(registry.names)
        for name in names[:2]:
            forged = result.copy()
            for op_id in forged.execution_plan.assignment:
                forged.execution_plan.assignment[op_id] = name
            cache.observe(tfp, plan, forged)
        assert len(cache.candidates(tfp)) == 2
        assert cache.get(tfp, plan, _recoster(optimizer)) is None
        assert cache.stats.low_confidence == 1

    def test_guardrail_reject_on_expensive_pick(self, registry):
        """A confident selector pointing at a candidate outside the
        guardrail band must be rejected, not served."""

        class ConstantSelector:
            """Every tree predicts index 1: confident and wrong."""

            def fit(self, X, y):
                return self

            class _Tree:
                def predict(self, X):
                    return np.ones(X.shape[0])

            trees_ = [_Tree(), _Tree(), _Tree()]

        cache = TemplateCache(
            guardrail=1.0,
            min_observations=2,
            selector_factory=ConstantSelector,
        )
        plan = build_pipeline(2, 1e4)
        tfp = template_fingerprint(plan, registry)
        schema = FeatureSchema(registry)
        optimizer = Robopt(
            registry, LinearRuntimeModel(schema.n_features, seed=1), schema=schema
        )
        result = optimizer.optimize(plan)
        names = list(registry.names)
        for name in names[:2]:
            forged = result.copy()
            for op_id in forged.execution_plan.assignment:
                forged.execution_plan.assignment[op_id] = name
            cache.observe(tfp, plan, forged)
        # Candidate costs differ (different platforms); index 1 is not
        # the argmin under guardrail=1.0 — or index 1 IS the argmin, in
        # which case flip to a recoster that inverts the order.
        recost = _recoster(optimizer)
        costs = [
            recost(plan, dict(c.assignment))[0] for c in cache.candidates(tfp)
        ]
        if costs[1] <= costs[0]:
            base = recost

            def recost(plan, assignment, _base=base):  # noqa: F811
                cost, xplan = _base(plan, assignment)
                return -cost, xplan

        assert cache.get(tfp, plan, recost) is None
        assert cache.stats.guardrail_rejects == 1


class TestPersistence:
    def test_round_trip(self, tmp_path, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        tfp = template_fingerprint(plan, registry)
        cache.observe(tfp, plan, optimizer.optimize(plan))
        path = cache.save(tmp_path / "templates.json")

        loaded = TemplateCache.load(path, registry)
        assert len(loaded) == 1
        assert loaded.stats.puts == 0  # loading is not a lifetime event
        unseen = build_pipeline(3, 8.1e6)
        hit = loaded.get(tfp, unseen, _recoster(optimizer))
        assert hit is not None
        assert hit.predicted_runtime == pytest.approx(
            optimizer.optimize(unseen).predicted_runtime
        )

    def test_load_respects_smaller_bound(self, tmp_path, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        result = optimizer.optimize(plan)
        for i in range(6):
            cache.observe(f"tfp{i}", plan, result)
        path = cache.save(tmp_path / "templates.json")
        loaded = TemplateCache.load(path, registry, max_templates=2)
        assert len(loaded) == 2
        assert loaded.fingerprints() == ["tfp4", "tfp5"]

    def test_observations_survive_the_round_trip(self, tmp_path, optimizer, registry):
        cache = TemplateCache()
        tfp = template_fingerprint(build_pipeline(3, 1e4), registry)
        for card in (1e4, 1e5, 1e6, 1e7):
            plan = build_pipeline(3, card)
            cache.observe(tfp, plan, optimizer.optimize(plan))
        path = cache.save(tmp_path / "templates.json")
        doc = json.loads(path.read_text())
        (entry,) = doc["templates"]
        assert len(entry["observations"]) == 4

    def test_fingerprint_version_mismatch_drops_templates(
        self, tmp_path, optimizer, registry
    ):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        cache.observe("tfp", plan, optimizer.optimize(plan))
        path = cache.save(tmp_path / "templates.json")
        doc = json.loads(path.read_text())
        doc["fingerprint_version"] = 999
        path.write_text(json.dumps(doc))
        assert len(TemplateCache.load(path, registry)) == 0

    def test_unknown_format_version_rejected(self, tmp_path, optimizer, registry):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        cache.observe("tfp", plan, optimizer.optimize(plan))
        path = cache.save(tmp_path / "templates.json")
        doc = json.loads(path.read_text())
        doc["version"] = TEMPLATE_CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            TemplateCache.load(path, registry)

    def test_corrupt_file_loads_empty_and_counts(self, tmp_path, registry):
        path = tmp_path / "templates.json"
        path.write_text('{"version": 1, "templa')  # truncated mid-write
        tracer = Tracer()
        with use_tracer(tracer):
            loaded = TemplateCache.load(path, registry)
        assert len(loaded) == 0
        assert tracer.counters["serve.template.load_corrupt"] == 1

    def test_missing_version_field_is_corrupt(self, tmp_path, registry):
        path = tmp_path / "templates.json"
        path.write_text(json.dumps({"templates": []}))
        assert len(TemplateCache.load(path, registry)) == 0

    def test_malformed_template_skipped_rest_load(
        self, tmp_path, optimizer, registry
    ):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        result = optimizer.optimize(plan)
        cache.observe("good-a", plan, result)
        cache.observe("good-b", plan, result)
        path = cache.save(tmp_path / "templates.json")
        doc = json.loads(path.read_text())
        doc["templates"][0]["candidates"] = [{"assignment": "not-a-dict"}]
        path.write_text(json.dumps(doc))
        loaded = TemplateCache.load(path, registry)
        assert loaded.fingerprints() == ["good-b"]

    def test_foreign_platform_candidates_dropped(
        self, tmp_path, optimizer, registry
    ):
        cache = TemplateCache()
        plan = build_pipeline(3, 1e4)
        cache.observe("tfp", plan, optimizer.optimize(plan))
        path = cache.save(tmp_path / "templates.json")
        doc = json.loads(path.read_text())
        for cand in doc["templates"][0]["candidates"]:
            cand["assignment"] = {k: "no-such-platform" for k in cand["assignment"]}
        path.write_text(json.dumps(doc))
        # With a registry: unknown platforms can never instantiate; drop.
        assert len(TemplateCache.load(path, registry)) == 0
