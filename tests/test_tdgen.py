"""Tests for TDGEN: shapes, job generation, profiles, and the facade."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.rheem.platforms import default_registry
from repro.simulator.executor import SimulatedExecutor
from repro.tdgen.generator import TrainingDataGenerator
from repro.tdgen.jobgen import JobGenerator, sample_execution_plans
from repro.tdgen.profiles import (
    ALL_LEVELS,
    ConfigurationProfile,
    default_cardinality_grid,
)
from repro.tdgen.shapes import SHAPES, Template, build_template

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestShapes:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_every_shape_builds_valid_plans(self, shape, rng):
        template = build_template(shape, 12, rng=rng)
        plan = template(1e6, level=2)
        plan.validate()

    @pytest.mark.parametrize("shape", SHAPES)
    def test_shape_topology_present(self, shape, rng):
        template = build_template(shape, 12, rng=rng)
        topo = template(1e5, level=1).topology_counts()
        if shape == "pipeline":
            assert topo.as_tuple() == (1, 0, 0, 0)
        elif shape in ("juncture", "relational"):
            assert topo.juncture >= 1
        elif shape == "replicate":
            assert topo.replicate >= 1
        else:
            assert topo.loop >= 1

    def test_same_template_same_structure_across_cardinalities(self, rng):
        template = build_template("pipeline", 10, rng=rng)
        a, b = template(1e4, 2), template(1e7, 2)
        assert a.signature()[0] == b.signature()[0]  # same ops
        assert a.signature()[1] == b.signature()[1]  # same edges

    def test_complexity_level_changes_udfs(self, rng):
        template = build_template("pipeline", 8, rng=rng)
        low = template(1e5, level=1)
        high = template(1e5, level=4)
        low_sum = sum(int(op.udf_complexity) for op in low.operators.values())
        high_sum = sum(int(op.udf_complexity) for op in high.operators.values())
        assert high_sum > low_sum

    def test_sgd_loop_has_cache_before_sample(self, rng):
        template = build_template("sgd_loop", 10, rng=rng)
        plan = template(1e6, 2)
        sample_id = next(
            i
            for i, op in plan.operators.items()
            if op.kind_name == "ShufflePartitionSample"
        )
        parents = [plan.operators[p].kind_name for p in plan.parents(sample_id)]
        assert parents == ["Cache"]
        assert plan.in_loop(sample_id)

    def test_graph_loop_has_iterative_pagerank(self, rng):
        template = build_template("graph_loop", 12, rng=rng)
        plan = template(1e6, 2)
        pr_id = next(
            i for i, op in plan.operators.items() if op.kind_name == "PageRank"
        )
        assert plan.in_loop(pr_id)

    def test_unknown_shape_rejected(self, rng):
        with pytest.raises(GenerationError):
            build_template("spiral", 10, rng=rng)

    def test_too_few_operators_rejected(self, rng):
        with pytest.raises(GenerationError):
            build_template("juncture", 3, rng=rng)


class TestProfiles:
    def test_default_grid_is_log_spaced(self):
        grid = default_cardinality_grid(1e2, 1e6, 5)
        ratios = [grid[i + 1] / grid[i] for i in range(4)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_grid_validation(self):
        with pytest.raises(GenerationError):
            default_cardinality_grid(0, 10)
        with pytest.raises(GenerationError):
            default_cardinality_grid(10, 5)
        with pytest.raises(GenerationError):
            default_cardinality_grid(1, 10, points=1)

    def test_executed_subset_covers_small_and_last(self):
        profile = ConfigurationProfile(cardinalities=tuple(range(1, 9)))
        executed = profile.executed_cardinalities()
        n = 8
        assert set(range((n + 1) // 2)) <= set(executed)  # all small
        assert n - 1 in executed  # right anchor
        assert len(executed) < n  # something is left to interpolate

    def test_level_validation(self):
        with pytest.raises(GenerationError):
            ConfigurationProfile(levels=(1, 9))
        with pytest.raises(GenerationError):
            ConfigurationProfile(cardinalities=())

    def test_jobs_per_assignment(self):
        profile = ConfigurationProfile(cardinalities=(1, 2, 3), levels=(1, 4))
        assert profile.n_jobs_per_assignment == 6


class TestJobGenerator:
    def test_templates_for_shapes(self, reg):
        gen = JobGenerator(reg, seed=1)
        templates = gen.templates_for_shapes(("pipeline", "loop"), 20, 10)
        assert len(templates) == 10
        assert {t.shape for t in templates} <= {"pipeline", "loop"}
        assert all(6 <= t.n_operators <= 20 for t in templates)

    def test_templates_like_workload(self, reg):
        gen = JobGenerator(reg, seed=2)
        workload = [build_pipeline(4), build_join_plan(), build_loop_plan()]
        templates = gen.templates_like(workload, 9)
        assert len(templates) == 9
        assert {t.shape for t in templates} <= {"pipeline", "juncture", "loop"}

    def test_templates_like_empty_workload_rejected(self, reg):
        with pytest.raises(GenerationError):
            JobGenerator(reg).templates_like([], 3)

    def test_templates_exhaustive_covers_all_shapes(self, reg):
        templates = JobGenerator(reg, seed=0).templates_exhaustive(14)
        assert {t.shape for t in templates} == set(SHAPES)

    def test_unknown_shape_rejected(self, reg):
        with pytest.raises(GenerationError):
            JobGenerator(reg).templates_for_shapes(("moebius",), 20, 5)

    def test_reproducible_with_seed(self, reg):
        a = JobGenerator(reg, seed=5).templates_for_shapes(("pipeline",), 15, 4)
        b = JobGenerator(reg, seed=5).templates_for_shapes(("pipeline",), 15, 4)
        assert [t.kinds for t in a] == [t.kinds for t in b]


class TestSampleExecutionPlans:
    def test_assignments_cover_plan_and_respect_beta(self, reg):
        plan = build_pipeline(5)
        rng = np.random.default_rng(3)
        assignments = sample_execution_plans(plan, reg, 10, beta=2, rng=rng)
        assert 1 <= len(assignments) <= 10
        from repro.rheem.execution_plan import ExecutionPlan

        for assignment in assignments:
            assert set(assignment) == set(plan.operators)
            xp = ExecutionPlan(plan, assignment, reg)
            assert xp.num_platform_switches() <= 2

    def test_beta_zero_yields_single_platform_plans(self, reg):
        plan = build_pipeline(4)
        assignments = sample_execution_plans(
            plan, reg, 10, beta=0, rng=np.random.default_rng(0)
        )
        for assignment in assignments:
            assert len(set(assignment.values())) == 1

    def test_n_plans_validation(self, reg):
        with pytest.raises(GenerationError):
            sample_execution_plans(build_pipeline(3), reg, 0)


class TestGeneratorFacade:
    @pytest.fixture(scope="class")
    def generated(self):
        registry = default_registry(("java", "spark", "flink"))
        executor = SimulatedExecutor.default(registry)
        gen = TrainingDataGenerator(registry, executor, seed=3)
        profile = ConfigurationProfile(
            cardinalities=tuple(default_cardinality_grid(1e4, 1e7, 5))
        )
        dataset = gen.generate(400, assignments_per_plan=2, profile=profile)
        return gen, dataset

    def test_returns_requested_points(self, generated):
        gen, dataset = generated
        assert len(dataset) == 400
        assert dataset.X.shape[1] == gen.schema.n_features

    def test_labels_are_positive_and_capped(self, generated):
        _, dataset = generated
        assert np.all(dataset.y >= 0)
        assert np.all(dataset.y <= 7200.0)

    def test_meta_recorded(self, generated):
        _, dataset = generated
        assert len(dataset.meta) == len(dataset)
        statuses = {m["status"] for m in dataset.meta}
        assert "ok" in statuses
        assert "interpolated" in statuses

    def test_stats_accounting(self, generated):
        gen, _ = generated
        s = gen.stats
        assert s.n_templates > 0
        assert s.n_executed > 0
        assert s.n_imputed > 0
        # The whole point of TDGEN: most labels are NOT executed.
        assert s.executed_fraction < 0.6

    def test_include_xplans(self):
        registry = default_registry(("java", "spark"))
        executor = SimulatedExecutor.default(registry)
        gen = TrainingDataGenerator(registry, executor, seed=4)
        profile = ConfigurationProfile(
            cardinalities=tuple(default_cardinality_grid(1e4, 1e6, 3)),
            levels=(1, 4),
        )
        dataset = gen.generate(
            30, assignments_per_plan=1, profile=profile, include_xplans=True
        )
        assert all("xplan" in m for m in dataset.meta)

    def test_workload_mode(self):
        registry = default_registry(("java", "spark"))
        executor = SimulatedExecutor.default(registry)
        gen = TrainingDataGenerator(registry, executor, seed=5)
        profile = ConfigurationProfile(
            cardinalities=tuple(default_cardinality_grid(1e4, 1e6, 3)),
            levels=(2,),
        )
        dataset = gen.generate(
            20,
            workload=[build_loop_plan()],
            assignments_per_plan=1,
            profile=profile,
        )
        assert len(dataset) == 20
        assert all(m["shape"] == "loop" for m in dataset.meta)

    def test_invalid_n_points(self):
        registry = default_registry(("java",))
        executor = SimulatedExecutor.default(registry)
        with pytest.raises(GenerationError):
            TrainingDataGenerator(registry, executor).generate(0)
