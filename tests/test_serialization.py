"""Tests for JSON (de)serialization of plans and execution plans."""

import json

import pytest

from repro.exceptions import PlanError
from repro.rheem.execution_plan import single_platform_plan
from repro.rheem.platforms import default_registry
from repro.rheem.serialization import (
    dataset_from_dict,
    execution_plan_from_json,
    execution_plan_to_json,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


class TestPlanRoundtrip:
    @pytest.mark.parametrize(
        "builder", [lambda: build_pipeline(3), build_join_plan, build_loop_plan]
    )
    def test_roundtrip_preserves_signature(self, builder):
        plan = builder()
        restored = plan_from_json(plan_to_json(plan))
        assert restored.signature() == plan.signature()
        assert restored.name == plan.name

    def test_roundtrip_preserves_selectivities_and_datasets(self):
        plan = build_pipeline(2, cardinality=12345)
        restored = plan_from_json(plan_to_json(plan))
        for op_id, op in plan.operators.items():
            assert restored.operators[op_id].selectivity == op.selectivity
            assert restored.operators[op_id].udf_complexity == op.udf_complexity
        src = plan.sources()[0]
        assert restored.datasets[src].cardinality == 12345

    def test_roundtrip_preserves_loops(self):
        plan = build_loop_plan(iterations=17)
        restored = plan_from_json(plan_to_json(plan))
        assert restored.loops[0].iterations == 17
        assert restored.loops[0].body == plan.loops[0].body

    def test_roundtrip_cardinalities_identical(self):
        plan = build_join_plan()
        restored = plan_from_json(plan_to_json(plan))
        assert restored.cardinalities() == plan.cardinalities()

    def test_restored_plan_validates(self):
        restored = plan_from_json(plan_to_json(build_join_plan()))
        restored.validate()

    def test_version_checked(self):
        blob = plan_to_dict(build_pipeline(2))
        blob["version"] = 999
        with pytest.raises(PlanError):
            plan_from_dict(blob)

    def test_dataset_document_validation(self):
        with pytest.raises(PlanError):
            dataset_from_dict({"name": "x"})

    def test_json_is_plain_and_readable(self):
        text = plan_to_json(build_pipeline(2))
        blob = json.loads(text)
        assert {"version", "name", "operators", "edges", "loops", "datasets"} <= set(
            blob
        )


class TestExecutionPlanRoundtrip:
    def test_roundtrip(self, reg):
        plan = build_join_plan()
        xplan = single_platform_plan(plan, "spark", reg)
        restored = execution_plan_from_json(execution_plan_to_json(xplan), reg)
        assert restored == xplan

    def test_conversions_recomputed(self, reg):
        plan = build_pipeline(2)
        from repro.rheem.execution_plan import ExecutionPlan

        xplan = ExecutionPlan(
            plan, {0: "spark", 1: "spark", 2: "java", 3: "java"}, reg
        )
        restored = execution_plan_from_json(execution_plan_to_json(xplan), reg)
        assert [c.kind for c in restored.conversions()] == [
            c.kind for c in xplan.conversions()
        ]

    def test_missing_platform_rejected(self, reg):
        plan = build_pipeline(2)
        xplan = single_platform_plan(plan, "flink", reg)
        small = default_registry(("java", "spark"))
        with pytest.raises(PlanError):
            execution_plan_from_json(execution_plan_to_json(xplan), small)
