"""Tests for the regression / ranking metrics."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.metrics import mae, pearson, q_error, rmse, spearman


class TestBasicMetrics:
    def test_rmse(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))
        assert rmse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_mae(self):
        assert mae([0, 0], [3, -4]) == pytest.approx(3.5)

    def test_q_error_median(self):
        assert q_error([1, 10], [2, 10], quantile=1.0) == pytest.approx(2.0)
        assert q_error([4], [2]) == pytest.approx(2.0)  # symmetric

    def test_q_error_symmetry(self):
        assert q_error([2], [8]) == q_error([8], [2])

    def test_validation(self):
        with pytest.raises(ModelError):
            rmse([1, 2], [1])
        with pytest.raises(ModelError):
            mae([], [])


class TestCorrelation:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_input_is_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_spearman_monotone_transform_invariance(self):
        x = np.array([1.0, 5.0, 3.0, 9.0, 7.0])
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)
        assert spearman(x, -np.exp(x)) == pytest.approx(-1.0)

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman(x, y) == pytest.approx(1.0)

    def test_spearman_uncorrelated_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=3000)
        y = rng.normal(size=3000)
        assert abs(spearman(x, y)) < 0.1


# ---------------------------------------------------------------------------
# Property-based edge cases (ISSUE 10 satellite): the metrics feed the
# drift monitor, so their zero/tie/empty behavior is load-bearing.
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

_runtimes = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=64,
)


class TestQErrorProperties:
    @settings(max_examples=100, deadline=None)
    @given(_runtimes, st.floats(0.0, 1.0))
    def test_finite_and_at_least_one(self, values, quantile):
        """Q-error is >= 1 and finite for any non-negative inputs —
        including exact zeros, which the internal floor absorbs instead
        of dividing by."""
        y = np.array(values)
        q = q_error(y, y[::-1].copy(), quantile)
        assert np.isfinite(q)
        assert q >= 1.0

    @settings(max_examples=100, deadline=None)
    @given(_runtimes, st.floats(0.0, 1.0))
    def test_symmetric_in_arguments(self, values, quantile):
        """max(pred/true, true/pred) does not care which side drifted."""
        rng = np.random.default_rng(7)
        y = np.array(values)
        p = y * rng.uniform(0.1, 10.0, size=y.size)
        assert q_error(y, p, quantile) == pytest.approx(
            q_error(p, y, quantile), rel=1e-12
        )

    @settings(max_examples=100, deadline=None)
    @given(_runtimes)
    def test_perfect_predictions_score_one_above_the_floor(self, values):
        """Identical (pred, true) pairs have q-error exactly 1 whenever
        the values clear the zero floor."""
        y = np.array(values)
        y = y[y >= 1e-9]
        if y.size == 0:
            return
        assert q_error(y, y.copy()) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e-12, allow_nan=False))
    def test_near_zero_truths_do_not_explode(self, tiny):
        """A sub-floor truth against a sane prediction yields a large but
        finite q-error — the drift monitor must never see inf."""
        q = q_error(np.array([tiny]), np.array([1.0]))
        assert np.isfinite(q)
        assert q >= 1.0


class TestSpearmanProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=64,
        )
    )
    def test_bounded_even_under_heavy_ties(self, values):
        """|rho| <= 1 for any input, including lists that are mostly (or
        entirely) one repeated value — all-tied inputs degrade to 0 via
        the zero-variance guard, never to NaN."""
        x = np.array(values)
        rng = np.random.default_rng(3)
        y = rng.permutation(x)
        rho = spearman(x, y)
        assert np.isfinite(rho)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=64,
            unique=True,
        ),
        st.integers(0, 3),
    )
    def test_tie_collapse_keeps_self_correlation_positive(self, values, buckets):
        """Quantizing a sequence against itself (heavy ties both sides)
        keeps rho in [0, 1]: shared average ranks cannot flip the sign
        of a self-comparison."""
        x = np.array(values)
        y = np.round(x, buckets)  # collapse near-equal values into ties
        rho = spearman(x, y)
        assert np.isfinite(rho)
        assert rho >= 0.0 or np.allclose(y, y[0])

    def test_all_tied_is_zero_not_nan(self):
        assert spearman(np.full(8, 3.0), np.arange(8.0)) == 0.0
        assert spearman(np.full(8, 3.0), np.full(8, 5.0)) == 0.0


class TestEmptyInputContracts:
    """Every metric refuses empty or mismatched inputs with ModelError —
    the windowed q-error in ml/drift.py relies on this never silently
    returning a number for a malformed window."""

    @pytest.mark.parametrize("metric", [rmse, mae, q_error, pearson, spearman])
    def test_empty_raises(self, metric):
        with pytest.raises(ModelError):
            metric(np.array([]), np.array([]))

    @pytest.mark.parametrize("metric", [rmse, mae, q_error, pearson, spearman])
    def test_shape_mismatch_raises(self, metric):
        with pytest.raises(ModelError):
            metric(np.arange(3.0), np.arange(4.0))

    @pytest.mark.parametrize("metric", [rmse, mae, q_error, pearson, spearman])
    def test_2d_input_raises(self, metric):
        with pytest.raises(ModelError):
            metric(np.ones((2, 2)), np.ones((2, 2)))
