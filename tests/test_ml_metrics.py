"""Tests for the regression / ranking metrics."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.metrics import mae, pearson, q_error, rmse, spearman


class TestBasicMetrics:
    def test_rmse(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))
        assert rmse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_mae(self):
        assert mae([0, 0], [3, -4]) == pytest.approx(3.5)

    def test_q_error_median(self):
        assert q_error([1, 10], [2, 10], quantile=1.0) == pytest.approx(2.0)
        assert q_error([4], [2]) == pytest.approx(2.0)  # symmetric

    def test_q_error_symmetry(self):
        assert q_error([2], [8]) == q_error([8], [2])

    def test_validation(self):
        with pytest.raises(ModelError):
            rmse([1, 2], [1])
        with pytest.raises(ModelError):
            mae([], [])


class TestCorrelation:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_input_is_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_spearman_monotone_transform_invariance(self):
        x = np.array([1.0, 5.0, 3.0, 9.0, 7.0])
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)
        assert spearman(x, -np.exp(x)) == pytest.approx(-1.0)

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman(x, y) == pytest.approx(1.0)

    def test_spearman_uncorrelated_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=3000)
        y = rng.normal(size=3000)
        assert abs(spearman(x, y)) < 0.1
