"""Tests for the Rheem-ML, exhaustive and RHEEMix optimizers."""

import numpy as np
import pytest

from repro.baselines.exhaustive import ExhaustiveOptimizer
from repro.baselines.rheem_ml import RheemMLOptimizer
from repro.core.features import FeatureSchema
from repro.cost.cost_model import CostModel, CostParameters
from repro.cost.optimizer import RheemixOptimizer
from repro.exceptions import EnumerationError
from repro.rheem.platforms import synthetic_registry

from conftest import build_join_plan, build_pipeline


class LinearModel:
    """A stand-in runtime model: non-negative linear in the plan vector."""

    def __init__(self, schema, seed=0):
        rng = np.random.default_rng(seed)
        self.weights = rng.uniform(0, 1, schema.n_features)

    def predict(self, X):
        return np.asarray(X) @ self.weights


@pytest.fixture
def reg():
    return synthetic_registry(2)


@pytest.fixture
def schema(reg):
    return FeatureSchema(reg)


@pytest.fixture
def model(schema):
    return LinearModel(schema)


class TestRheemML:
    def test_finds_the_vectorized_optimum(self, reg, schema, model):
        from repro.core.enumerator import PriorityEnumerator
        from repro.core.pruning import ml_cost

        plan = build_join_plan()
        rml = RheemMLOptimizer(reg, model, schema=schema).optimize(plan)
        vec = PriorityEnumerator(reg, ml_cost(model), schema=schema).enumerate_plan(plan)
        assert rml.predicted_runtime == pytest.approx(vec.predicted_cost)
        assert rml.execution_plan == vec.execution_plan

    def test_records_vectorization_time(self, reg, schema, model):
        plan = build_pipeline(4)
        result = RheemMLOptimizer(reg, model, schema=schema).optimize(plan)
        assert result.stats.time_vectorize_s > 0
        assert result.stats.time_predict_s > 0

    def test_vectorization_dominates_prediction(self, reg, schema, model):
        """The §VII-B observation: per-subplan plan→vector transformation
        costs far more than the model invocations themselves."""
        plan = build_pipeline(8)
        result = RheemMLOptimizer(reg, model, schema=schema).optimize(plan)
        assert result.stats.time_vectorize_s > result.stats.time_predict_s


class TestExhaustive:
    def test_explores_k_to_n(self, reg, schema, model):
        plan = build_pipeline(3)
        result = ExhaustiveOptimizer(reg, model, schema=schema).optimize(plan)
        assert result.stats.final_vectors == 2 ** plan.n_operators

    def test_guard_for_large_plans(self, reg, schema, model):
        plan = build_pipeline(10)
        opt = ExhaustiveOptimizer(reg, model, schema=schema, max_vectors=1000)
        with pytest.raises(EnumerationError):
            opt.optimize(plan)


class TestRheemix:
    def make_cost_model(self, reg):
        params = CostParameters()
        for kind in (
            "TextFileSource",
            "Filter",
            "Map",
            "FlatMap",
            "ReduceBy",
            "Sort",
            "Distinct",
            "Join",
            "CollectionSink",
        ):
            for i, p in enumerate(reg.names):
                params.operator_coeffs[(kind, p)] = (0.05 * (i + 1), 1e-7 / (i + 1), 0)
        params.startup = {name: 2.0 * i for i, name in enumerate(reg.names)}
        for conv in ("collect", "distribute", "broadcast"):
            params.conversion_coeffs[conv] = (0.4, 1e-6)
        return CostModel(reg, params)

    def test_optimizes_with_cost_model(self, reg):
        plan = build_join_plan()
        cost_model = self.make_cost_model(reg)
        result = RheemixOptimizer(reg, cost_model).optimize(plan)
        assert result.predicted_runtime > 0
        assert set(result.execution_plan.assignment) == set(plan.operators)

    def test_matches_brute_force_on_small_plan(self, reg):
        import itertools

        from repro.rheem.execution_plan import ExecutionPlan

        plan = build_pipeline(2)
        cost_model = self.make_cost_model(reg)
        result = RheemixOptimizer(reg, cost_model).optimize(plan)
        best = min(
            cost_model.cost_of_plan(
                ExecutionPlan(
                    plan,
                    dict(zip(sorted(plan.operators), combo)),
                    reg,
                )
            )
            for combo in itertools.product(reg.names, repeat=plan.n_operators)
        )
        assert result.predicted_runtime == pytest.approx(best)

    def test_pruning_flag(self, reg):
        plan = build_pipeline(3)
        cost_model = self.make_cost_model(reg)
        pruned = RheemixOptimizer(reg, cost_model).optimize(plan)
        full = RheemixOptimizer(reg, cost_model, pruning=False).optimize(plan)
        assert pruned.predicted_runtime == pytest.approx(full.predicted_runtime)
