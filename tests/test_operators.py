"""Tests for the operator catalog and operator instances."""

import pytest

from repro.exceptions import UnknownOperatorError
from repro.rheem.operators import (
    KIND_NAMES,
    KINDS,
    LogicalOperator,
    UdfComplexity,
    get_kind,
    operator,
)


class TestCatalog:
    def test_catalog_has_stable_order(self):
        assert KIND_NAMES == tuple(KINDS)
        assert KIND_NAMES[0] == "TextFileSource"

    def test_sources_and_sinks_flagged(self):
        assert KINDS["TextFileSource"].is_source
        assert not KINDS["TextFileSource"].is_sink
        assert KINDS["CollectionSink"].is_sink
        assert KINDS["Join"].is_binary

    def test_arities(self):
        assert KINDS["Map"].arity_in == 1
        assert KINDS["Join"].arity_in == 2
        assert KINDS["TextFileSource"].arity_in == 0
        assert KINDS["CollectionSink"].arity_out == 0

    def test_get_kind_unknown_raises(self):
        with pytest.raises(UnknownOperatorError):
            get_kind("Teleport")

    def test_every_kind_has_positive_default_selectivity(self):
        for kind in KINDS.values():
            assert kind.default_selectivity > 0


class TestLogicalOperator:
    def test_defaults_come_from_kind(self):
        op = operator("Filter")
        assert op.selectivity == KINDS["Filter"].default_selectivity
        assert op.udf_complexity == KINDS["Filter"].default_complexity
        assert op.label == "Filter"

    def test_overrides(self):
        op = operator(
            "Map",
            "Map(heavy)",
            udf_complexity=UdfComplexity.SUPER_QUADRATIC,
            selectivity=0.3,
        )
        assert op.label == "Map(heavy)"
        assert op.udf_complexity == UdfComplexity.SUPER_QUADRATIC
        assert op.selectivity == 0.3

    def test_output_cardinality_uses_selectivity(self):
        op = operator("Filter", selectivity=0.25)
        assert op.output_cardinality(1000.0) == 250.0

    def test_fixed_output_cardinality_wins(self):
        op = operator("ReduceBy", fixed_output_cardinality=10)
        assert op.output_cardinality(1e9) == 10.0

    def test_sink_output_is_zero(self):
        op = operator("CollectionSink")
        assert op.output_cardinality(1e6) == 0.0

    def test_params_passthrough(self):
        op = operator("Map", note="hello", level=3)
        assert op.params == {"note": "hello", "level": 3}

    def test_id_unassigned_until_added(self):
        assert operator("Map").id == -1


class TestUdfComplexity:
    def test_encoding_order(self):
        assert (
            UdfComplexity.LOGARITHMIC
            < UdfComplexity.LINEAR
            < UdfComplexity.QUADRATIC
            < UdfComplexity.SUPER_QUADRATIC
        )

    def test_int_values_match_paper_classes(self):
        assert [c.value for c in UdfComplexity] == [1, 2, 3, 4]
