"""Tests for the Robopt facade: optimize, top-k, explain."""

import numpy as np
import pytest

from repro.core.features import FeatureSchema
from repro.core.optimizer import ExplainReport, Robopt
from repro.exceptions import EnumerationError
from repro.rheem.platforms import default_registry, synthetic_registry

from conftest import build_join_plan, build_pipeline


class LinearModel:
    def __init__(self, schema, seed=0):
        rng = np.random.default_rng(seed)
        self.weights = rng.uniform(0, 1, schema.n_features)

    def predict(self, X):
        return np.asarray(X) @ self.weights


@pytest.fixture
def setup():
    reg = synthetic_registry(3)
    schema = FeatureSchema(reg)
    return reg, schema, LinearModel(schema)


class TestOptimize:
    def test_returns_complete_plan(self, setup):
        reg, schema, model = setup
        result = Robopt(reg, model, schema=schema).optimize(build_pipeline(3))
        assert set(result.execution_plan.assignment) == set(range(5))
        assert result.predicted_runtime >= 0
        assert result.latency_s > 0

    def test_repr(self, setup):
        reg, schema, model = setup
        text = repr(Robopt(reg, model, schema=schema))
        assert "priority='robopt'" in text

    def test_optimization_is_deterministic(self, setup):
        reg, schema, model = setup
        robopt = Robopt(reg, model, schema=schema)
        plan = build_join_plan()
        a = robopt.optimize(plan)
        b = robopt.optimize(plan)
        assert a.execution_plan == b.execution_plan
        assert a.predicted_runtime == b.predicted_runtime

    def test_invalid_plan_rejected(self, setup):
        reg, schema, model = setup
        from repro.exceptions import PlanError
        from repro.rheem.logical_plan import LogicalPlan

        with pytest.raises(PlanError):
            Robopt(reg, model, schema=schema).optimize(LogicalPlan("empty"))


class TestTopK:
    def test_topk_sorted_and_distinct(self, setup):
        reg, schema, model = setup
        robopt = Robopt(reg, model, schema=schema)
        ranked = robopt.optimize_topk(build_pipeline(3), k=5)
        assert 1 <= len(ranked) <= 5
        costs = [cost for _, cost in ranked]
        assert costs == sorted(costs)
        plans = [xp.signature() for xp, _ in ranked]
        assert len(set(plans)) == len(plans)

    def test_topk_first_equals_optimize(self, setup):
        reg, schema, model = setup
        robopt = Robopt(reg, model, schema=schema)
        plan = build_join_plan()
        best = robopt.optimize(plan)
        ranked = robopt.optimize_topk(plan, k=2)
        assert ranked[0][1] == pytest.approx(best.predicted_runtime)
        assert ranked[0][0] == best.execution_plan

    def test_invalid_k(self, setup):
        reg, schema, model = setup
        with pytest.raises(EnumerationError):
            Robopt(reg, model, schema=schema).optimize_topk(build_pipeline(2), k=0)


class TestExplain:
    def test_explain_fields(self, setup):
        reg, schema, model = setup
        report = Robopt(reg, model, schema=schema).explain(build_pipeline(3), k=3)
        assert isinstance(report, ExplainReport)
        assert report.predicted_runtime >= 0
        assert set(report.single_platform_predictions) == set(reg.names)
        assert len(report.alternatives) <= 2
        for _, cost in report.alternatives:
            assert cost >= report.predicted_runtime

    def test_explain_skips_infeasible_platforms(self):
        reg = default_registry(("java", "spark", "graphx"))
        schema = FeatureSchema(reg)
        model = LinearModel(schema)
        report = Robopt(reg, model, schema=schema).explain(build_pipeline(2))
        assert "graphx" not in report.single_platform_predictions

    def test_render_readable(self, setup):
        reg, schema, model = setup
        text = Robopt(reg, model, schema=schema).explain(build_pipeline(3)).render()
        assert "Chosen plan" in text
        assert "Single-platform predictions" in text
        assert "plan vectors" in text
