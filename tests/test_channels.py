"""Tests for channels and the channel conversion graph."""

import pytest

from repro.exceptions import PlatformError
from repro.rheem.channels import (
    Channel,
    build_conversion_graph,
    channel_conversion_path,
    conversion_path_via_graph,
    platform_channel,
)
from repro.rheem.conversion import conversion_path
from repro.rheem.platforms import Platform, default_registry


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink", "postgres"))


class TestChannels:
    def test_platform_channel_per_category(self, reg):
        assert platform_channel(reg["java"]).name == "java.collection"
        assert platform_channel(reg["spark"]).name == "spark.dataset"
        assert platform_channel(reg["postgres"]).name == "postgres.relation"

    def test_database_channels_not_reusable(self, reg):
        assert not platform_channel(reg["postgres"]).reusable
        assert platform_channel(reg["spark"]).reusable


class TestConversionGraph:
    def test_graph_has_driver_hub(self, reg):
        graph = build_conversion_graph(tuple(reg.platforms))
        names = {node.name for node in graph.nodes}
        assert "driver.collection" in names
        assert len(names) == len(reg) + 1

    def test_local_platform_costs_nothing_to_reach_driver(self, reg):
        graph = build_conversion_graph(tuple(reg.platforms))
        java = platform_channel(reg["java"])
        driver = next(n for n in graph.nodes if n.name == "driver.collection")
        assert graph.edges[java, driver]["weight"] == 0.0

    def test_same_platform_no_steps(self, reg):
        assert channel_conversion_path(reg["spark"], reg["spark"]) == []

    def test_distributed_pair_goes_through_driver(self, reg):
        steps = channel_conversion_path(reg["spark"], reg["flink"])
        assert [(s.kind, s.platform) for s in steps] == [
            ("collect", "spark"),
            ("distribute", "flink"),
        ]

    def test_broadcast_in_loops(self, reg):
        steps = channel_conversion_path(reg["java"], reg["spark"], in_loop=True)
        assert [s.kind for s in steps] == ["broadcast"]


class TestEquivalenceWithRuleTable:
    def test_graph_matches_rule_table_for_all_pairs(self, reg):
        """The Dijkstra-derived paths equal the hand-written rule table."""
        for a in reg:
            for b in reg:
                for in_loop in (False, True):
                    expected = tuple(
                        (s.kind, s.platform)
                        for s in conversion_path(a, b, in_loop=in_loop)
                    )
                    derived = conversion_path_via_graph(a, b, in_loop=in_loop)
                    assert derived == expected, (a.name, b.name, in_loop)

    def test_new_platform_category_needs_no_rule(self):
        """The graph handles platforms the rule table never saw."""
        exotic = Platform("duckdb", "database", frozenset({"Join"}))
        spark = Platform("spark", "distributed")
        steps = channel_conversion_path(exotic, spark)
        assert [(s.kind, s.platform) for s in steps] == [
            ("db_export", "duckdb"),
            ("distribute", "spark"),
        ]
