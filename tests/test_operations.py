"""Tests for the algebraic operations (§IV-C/D)."""

import numpy as np
import pytest

from repro.core.enumeration import EnumerationContext
from repro.core.operations import (
    enumerate_abstract,
    enumerate_singleton,
    iterate,
    merge,
    merge_enumerations,
    split,
    unvectorize,
    vectorize,
)
from repro.exceptions import (
    EnumerationError,
    ScopeError,
    VectorizationError,
)
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.platforms import synthetic_registry

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def ctx():
    return EnumerationContext(build_pipeline(2), synthetic_registry(3))


class TestVectorizeAndSplit:
    def test_vectorize_covers_full_scope(self, ctx):
        abstract = vectorize(ctx)
        assert abstract.scope == frozenset(ctx.plan.operators)

    def test_abstract_marks_alternatives_with_minus_one(self, ctx):
        abstract = vectorize(ctx)
        schema = ctx.schema
        for op_id, alts in abstract.alternatives.items():
            kind = ctx.plan.operators[op_id].kind_name
            for pi in alts:
                assert abstract.features[schema.op_platform_cell(kind, int(pi))] == -1.0

    def test_vectorize_from_plan_and_registry(self):
        plan = build_pipeline(2)
        reg = synthetic_registry(2)
        abstract = vectorize(plan, reg)
        assert abstract.n_operators == plan.n_operators

    def test_vectorize_requires_registry_with_plan(self):
        with pytest.raises(VectorizationError):
            vectorize(build_pipeline(2))

    def test_split_yields_disjoint_singletons_covering_scope(self, ctx):
        parts = split(vectorize(ctx))
        scopes = [part.scope for part in parts]
        assert all(len(s) == 1 for s in scopes)
        union = frozenset().union(*scopes)
        assert union == frozenset(ctx.plan.operators)
        assert len(scopes) == len(set(scopes))


class TestEnumerate:
    def test_singleton_enumeration_one_vector_per_platform(self, ctx):
        parts = split(vectorize(ctx))
        for part in parts:
            enum = enumerate_singleton(part)
            (op_id,) = part.scope
            assert enum.n_vectors == len(ctx.alternatives[op_id])

    def test_singleton_rejects_larger_scope(self, ctx):
        with pytest.raises(EnumerationError):
            enumerate_singleton(vectorize(ctx))

    def test_enumerate_abstract_is_cartesian(self, ctx):
        enum = enumerate_abstract(vectorize(ctx))
        k = len(ctx.registry)
        assert enum.n_vectors == k ** ctx.plan.n_operators
        # all assignments distinct
        uniq = np.unique(enum.assignments, axis=0)
        assert uniq.shape[0] == enum.n_vectors


class TestIterate:
    def test_iterate_is_cartesian_product(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        i, j = iterate(parts[0], parts[1])
        n1, n2 = parts[0].n_vectors, parts[1].n_vectors
        assert len(i) == len(j) == n1 * n2
        pairs = set(zip(i.tolist(), j.tolist()))
        assert len(pairs) == n1 * n2


class TestMerge:
    def test_merge_scope_is_union(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        merged = merge_enumerations(parts[0], parts[1])
        assert merged.scope == parts[0].scope | parts[1].scope

    def test_merge_overlapping_scopes_rejected(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        merged = merge_enumerations(parts[0], parts[1])
        with pytest.raises(ScopeError):
            merge_enumerations(merged, parts[0])

    def test_merge_different_contexts_rejected(self):
        reg = synthetic_registry(2)
        c1 = EnumerationContext(build_pipeline(2), reg)
        c2 = EnumerationContext(build_pipeline(2), reg)
        a = enumerate_singleton(split(vectorize(c1))[0])
        b = enumerate_singleton(split(vectorize(c2))[1])
        with pytest.raises(ScopeError):
            merge_enumerations(a, b)

    def test_merge_assignments_combine(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        merged = merge_enumerations(parts[0], parts[1])
        for row in range(merged.n_vectors):
            a = merged.assignments[row]
            assert a[0] >= 0 and a[1] >= 0
            assert np.all(a[2:] == -1)

    def test_merge_adds_conversion_features_on_crossing_edges(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        merged = merge_enumerations(parts[0], parts[1])
        schema = ctx.schema
        conv_cols = [
            schema.conv_platform_cell(kind, i)
            for kind in schema.conversion_kinds
            for i in range(len(ctx.registry))
        ]
        for row in range(merged.n_vectors):
            switches = merged.assignments[row, 0] != merged.assignments[row, 1]
            has_conv = merged.features[row, conv_cols].sum() > 0
            assert has_conv == bool(switches)

    def test_merged_vector_matches_direct_encoding(self, ctx):
        enum = enumerate_abstract(vectorize(ctx))
        schema = ctx.schema
        for row in range(0, enum.n_vectors, 7):
            xp = ExecutionPlan(
                ctx.plan, enum.assignment_dict(row), ctx.registry
            )
            direct = schema.encode_execution_plan(xp)
            assert np.allclose(direct, enum.features[row]), row

    def test_merged_vector_matches_direct_encoding_with_loops(self):
        ctx = EnumerationContext(build_loop_plan(iterations=6), synthetic_registry(2))
        enum = enumerate_abstract(vectorize(ctx))
        schema = ctx.schema
        for row in range(enum.n_vectors):
            xp = ExecutionPlan(ctx.plan, enum.assignment_dict(row), ctx.registry)
            assert np.allclose(
                schema.encode_execution_plan(xp), enum.features[row]
            ), row

    def test_pairwise_merge_unit_form(self, ctx):
        parts = [enumerate_singleton(p) for p in split(vectorize(ctx))]
        single = merge(parts[0], parts[1], 0, 1)
        assert single.n_vectors == 1
        batched = merge_enumerations(parts[0], parts[1])
        i, j = iterate(parts[0], parts[1])
        row = next(
            r for r in range(len(i)) if i[r] == 0 and j[r] == 1
        )
        assert np.allclose(single.features[0], batched.features[row])


class TestUnvectorize:
    def test_roundtrip_assignment(self, ctx):
        enum = enumerate_abstract(vectorize(ctx))
        for row in (0, enum.n_vectors // 2, enum.n_vectors - 1):
            xp = unvectorize(enum, row)
            assert xp.assignment == enum.assignment_dict(row)

    def test_partial_scope_rejected(self, ctx):
        part = enumerate_singleton(split(vectorize(ctx))[0])
        with pytest.raises(VectorizationError):
            unvectorize(part, 0)

    def test_row_out_of_range(self, ctx):
        enum = enumerate_abstract(vectorize(ctx))
        with pytest.raises(VectorizationError):
            unvectorize(enum, enum.n_vectors)

    def test_unvectorized_plan_has_conversions(self):
        ctx = EnumerationContext(build_join_plan(), synthetic_registry(2))
        enum = enumerate_abstract(vectorize(ctx))
        mixed_row = next(
            r
            for r in range(enum.n_vectors)
            if len(set(enum.assignments[r][enum.assignments[r] >= 0])) > 1
        )
        xp = unvectorize(enum, mixed_row)
        assert xp.num_platform_switches() > 0
        assert xp.conversions()
