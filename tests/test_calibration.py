"""Tests for cost-model calibration (well-tuned vs. simply-tuned, §II)."""

import numpy as np
import pytest

from repro.cost.calibration import calibrate_simply_tuned, calibrate_well_tuned
from repro.cost.cost_model import INFEASIBLE_COST
from repro.rheem.execution_plan import single_platform_plan
from repro.rheem.platforms import default_registry
from repro.simulator.executor import SimulatedExecutor

from conftest import build_pipeline


@pytest.fixture(scope="module")
def setup():
    registry = default_registry(("java", "spark", "flink"))
    executor = SimulatedExecutor.default(registry)
    well = calibrate_well_tuned(registry, executor, seed=11, n_jobs=600)
    simply = calibrate_simply_tuned(registry, executor)
    return registry, executor, well, simply


class TestWellTuned:
    def test_nonnegative_coefficients(self, setup):
        _, _, well, _ = setup
        for coeffs in well.parameters.operator_coeffs.values():
            assert all(c >= 0 for c in coeffs)
        for c in well.parameters.startup.values():
            assert c >= 0

    def test_reasonable_accuracy_on_simple_plans(self, setup):
        registry, executor, well, _ = setup
        plan = build_pipeline(3, cardinality=1e7)
        for platform in ("spark", "flink"):
            xp = single_platform_plan(plan, platform, registry)
            truth = executor.execute(xp).runtime_s
            estimate = well.cost_of_plan(xp)
            assert estimate == pytest.approx(truth, rel=3.0)  # order of magnitude

    def test_well_tuned_orders_platforms_on_big_inputs(self, setup):
        registry, executor, well, _ = setup
        plan = build_pipeline(3, cardinality=5e8)
        costs = {
            p: well.cost_of_plan(single_platform_plan(plan, p, registry))
            for p in registry.names
        }
        truths = {}
        for p in registry.names:
            report = executor.execute(single_platform_plan(plan, p, registry))
            truths[p] = report.runtime_s if report.ok else float("inf")
        # The platform the model prefers must be among the actually-fast ones.
        chosen = min(costs, key=costs.get)
        assert truths[chosen] <= min(truths.values()) * 2.5

    def test_memory_feasibility_propagates(self, setup):
        registry, _, well, _ = setup
        plan = build_pipeline(3, cardinality=5e9)
        cost = well.cost_of_plan(single_platform_plan(plan, "java", registry))
        assert cost == INFEASIBLE_COST


class TestSimplyTuned:
    def test_produces_coefficients_for_all_platforms(self, setup):
        registry, _, _, simply = setup
        platforms = {p for (_, p) in simply.parameters.operator_coeffs}
        assert platforms == set(registry.names)

    def test_per_tuple_costs_absorb_startup(self, setup):
        """The §II failure mode: spark per-tuple costs are inflated by the
        startup absorbed in the micro-benchmark, so simply-tuned
        overestimates big-platform costs relative to well-tuned."""
        _, _, well, simply = setup
        (w_fix, w_in, w_out) = well.parameters.operator_coeffs.get(
            ("Map", "spark"), (0, 0, 0)
        )
        (s_fix, s_in, s_out) = simply.parameters.operator_coeffs[("Map", "spark")]
        assert s_in > 0
        # startup (6 s) / 1e6 tuples = 6e-6 per tuple leaks into s_in
        assert s_in > 5e-6

    def test_simply_tuned_biases_towards_java(self, setup):
        registry, _, _, simply = setup
        plan = build_pipeline(3, cardinality=1e7)
        costs = {
            p: simply.cost_of_plan(single_platform_plan(plan, p, registry))
            for p in registry.names
        }
        assert min(costs, key=costs.get) == "java"
