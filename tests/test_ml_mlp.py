"""Tests for the MLP regressor."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.mlp import MLPRegressor


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestMLP:
    def test_learns_linear_function(self, rng):
        X = rng.normal(size=(400, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 1.0
        model = MLPRegressor(hidden=(16,), epochs=100, seed=0).fit(X, y)
        pred = model.predict(X)
        rmse = np.sqrt(np.mean((pred - y) ** 2))
        assert rmse < 0.5 * y.std()

    def test_learns_nonlinear_function(self, rng):
        X = rng.uniform(-1, 1, size=(600, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        model = MLPRegressor(hidden=(32, 16), epochs=200, seed=0).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < 0.6 * y.std()

    def test_reproducible_with_seed(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        a = MLPRegressor(epochs=10, seed=3).fit(X, y).predict(X[:5])
        b = MLPRegressor(epochs=10, seed=3).fit(X, y).predict(X[:5])
        assert np.allclose(a, b)

    def test_handles_constant_columns(self, rng):
        X = np.hstack([rng.normal(size=(100, 2)), np.zeros((100, 1))])
        y = X[:, 0]
        model = MLPRegressor(epochs=20, seed=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_validation(self):
        with pytest.raises(ModelError):
            MLPRegressor(hidden=(0,))
        with pytest.raises(ModelError):
            MLPRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.zeros((2, 2)))

    def test_batch_larger_than_data(self, rng):
        X = rng.normal(size=(10, 2))
        y = X[:, 0]
        model = MLPRegressor(epochs=5, batch_size=256, seed=0).fit(X, y)
        assert model.predict(X).shape == (10,)
