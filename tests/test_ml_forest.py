"""Tests for the random forest regressor."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.forest import RandomForestRegressor


@pytest.fixture
def data():
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(400, 6))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(0, 0.01, 400)
    return X, y


class TestFit:
    def test_trains_requested_number_of_trees(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=7, seed=0).fit(X, y)
        assert len(rf.trees_) == 7

    def test_reproducible_with_seed(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X[:20])
        b = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X[:20])
        assert np.allclose(a, b)

    def test_different_seeds_differ(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X[:20])
        b = RandomForestRegressor(n_estimators=5, seed=2).fit(X, y).predict(X[:20])
        assert not np.allclose(a, b)

    def test_more_trees_reduce_test_error(self, data):
        X, y = data
        rng = np.random.default_rng(9)
        Xt = rng.uniform(size=(200, 6))
        yt = 2 * Xt[:, 0] + Xt[:, 1] * Xt[:, 2]
        small = RandomForestRegressor(n_estimators=2, seed=0).fit(X, y)
        large = RandomForestRegressor(n_estimators=30, seed=0).fit(X, y)
        err_small = np.mean((small.predict(Xt) - yt) ** 2)
        err_large = np.mean((large.predict(Xt) - yt) ** 2)
        assert err_large <= err_small * 1.05

    def test_max_samples_limits_tree_data(self, data):
        X, y = data
        rf = RandomForestRegressor(
            n_estimators=3, max_samples=0.1, seed=0, min_samples_leaf=1
        ).fit(X, y)
        # With 40 rows per tree, trees stay small.
        assert all(t.n_nodes < 80 for t in rf.trees_)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ModelError):
            RandomForestRegressor(max_samples=0.0)
        with pytest.raises(ModelError):
            RandomForestRegressor().fit(np.zeros((5, 2)), np.zeros(4))


class TestPredict:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_prediction_is_mean_of_trees(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=4, seed=3).fit(X, y)
        manual = np.mean([t.predict(X[:10]) for t in rf.trees_], axis=0)
        assert np.allclose(rf.predict(X[:10]), manual)

    def test_feature_importances_sum_to_one(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        imp = rf.feature_importances()
        assert imp.shape == (6,)
        assert imp.sum() == pytest.approx(1.0)
        assert np.all(imp >= 0)

    def test_importances_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().feature_importances()
