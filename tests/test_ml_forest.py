"""Tests for the random forest regressor."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.forest import RandomForestRegressor


@pytest.fixture
def data():
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(400, 6))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(0, 0.01, 400)
    return X, y


class TestFit:
    def test_trains_requested_number_of_trees(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=7, seed=0).fit(X, y)
        assert len(rf.trees_) == 7

    def test_reproducible_with_seed(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X[:20])
        b = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X[:20])
        assert np.allclose(a, b)

    def test_different_seeds_differ(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X[:20])
        b = RandomForestRegressor(n_estimators=5, seed=2).fit(X, y).predict(X[:20])
        assert not np.allclose(a, b)

    def test_more_trees_reduce_test_error(self, data):
        X, y = data
        rng = np.random.default_rng(9)
        Xt = rng.uniform(size=(200, 6))
        yt = 2 * Xt[:, 0] + Xt[:, 1] * Xt[:, 2]
        small = RandomForestRegressor(n_estimators=2, seed=0).fit(X, y)
        large = RandomForestRegressor(n_estimators=30, seed=0).fit(X, y)
        err_small = np.mean((small.predict(Xt) - yt) ** 2)
        err_large = np.mean((large.predict(Xt) - yt) ** 2)
        assert err_large <= err_small * 1.05

    def test_max_samples_limits_tree_data(self, data):
        X, y = data
        rf = RandomForestRegressor(
            n_estimators=3, max_samples=0.1, seed=0, min_samples_leaf=1
        ).fit(X, y)
        # With 40 rows per tree, trees stay small.
        assert all(t.n_nodes < 80 for t in rf.trees_)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ModelError):
            RandomForestRegressor(max_samples=0.0)
        with pytest.raises(ModelError):
            RandomForestRegressor().fit(np.zeros((5, 2)), np.zeros(4))


class TestPredict:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_prediction_is_mean_of_trees(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=4, seed=3).fit(X, y)
        manual = np.mean([t.predict(X[:10]) for t in rf.trees_], axis=0)
        assert np.allclose(rf.predict(X[:10]), manual)

    def test_feature_importances_sum_to_one(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        imp = rf.feature_importances()
        assert imp.shape == (6,)
        assert imp.sum() == pytest.approx(1.0)
        assert np.all(imp >= 0)

    def test_importances_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().feature_importances()


class TestPredictDist:
    def test_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict_dist(np.zeros((1, 2)))

    def test_mean_is_bit_identical_to_predict(self, data):
        """One traversal serves both moments: enabling uncertainty must
        not perturb the ranking predictions by a single ulp."""
        X, y = data
        rf = RandomForestRegressor(n_estimators=6, seed=3).fit(X, y)
        mean, std = rf.predict_dist(X[:50])
        assert np.array_equal(mean, rf.predict(X[:50]))
        assert mean.shape == std.shape == (50,)

    def test_std_is_per_tree_population_spread(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=5, seed=7).fit(X, y)
        per_tree = np.stack([t.predict(X[:20]) for t in rf.trees_], axis=1)
        _, std = rf.predict_dist(X[:20])
        assert np.allclose(std, per_tree.std(axis=1))
        assert np.all(std >= 0)

    def test_single_tree_forest_reports_zero_std(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=1, seed=0).fit(X, y)
        _, std = rf.predict_dist(X[:10])
        assert np.array_equal(std, np.zeros(10))

    def test_masked_fallback_path_agrees(self, data):
        """The right==left+1 invariant can be violated by models from
        older saves; the masked descent must yield the same moments."""
        X, y = data
        rf = RandomForestRegressor(n_estimators=4, seed=5).fit(X, y)
        mean_fast, std_fast = rf.predict_dist(X[:30])
        # Rebuild the packed arrays as _pack leaves them when the child
        # invariant fails: raw concatenation, leaves NOT self-looping,
        # _max_depth = -1 routing every call through the masked loop.
        offsets = np.cumsum([0] + [t.n_nodes for t in rf.trees_[:-1]]).astype(np.int64)
        rf._roots = offsets
        rf._feature = np.concatenate([t.feature_ for t in rf.trees_])
        rf._threshold = np.concatenate([t.threshold_ for t in rf.trees_])
        rf._left = np.concatenate([t.left_ + o for t, o in zip(rf.trees_, offsets)])
        rf._right = np.concatenate([t.right_ + o for t, o in zip(rf.trees_, offsets)])
        rf._value = np.concatenate([t.value_ for t in rf.trees_])
        rf._gather_cache = {}
        rf._max_depth = -1
        mean_slow, std_slow = rf.predict_dist(X[:30])
        assert np.allclose(mean_fast, mean_slow)
        assert np.allclose(std_fast, std_slow)

    def test_unpickled_old_save_repacks_lazily(self, data):
        """Models pickled before the packed arrays existed must still
        answer predict_dist (the descent repacks on first use)."""
        X, y = data
        rf = RandomForestRegressor(n_estimators=3, seed=1).fit(X, y)
        expect_mean, expect_std = rf.predict_dist(X[:10])
        for attr in ("_roots", "_feature", "_threshold", "_left", "_right",
                     "_value", "_gather_cache", "_max_depth"):
            if hasattr(rf, attr):
                delattr(rf, attr)
        mean, std = rf.predict_dist(X[:10])
        assert np.array_equal(mean, expect_mean)
        assert np.array_equal(std, expect_std)
