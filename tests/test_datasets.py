"""Tests for dataset profiles."""

import pytest

from repro.exceptions import PlanError
from repro.rheem.datasets import (
    GB,
    MB,
    PAPER_DATASETS,
    DatasetProfile,
    paper_dataset,
)


class TestDatasetProfile:
    def test_size_bytes(self):
        d = DatasetProfile("d", cardinality=1000, tuple_size=50)
        assert d.size_bytes == 50_000

    def test_scaled_to_bytes(self):
        d = DatasetProfile("d", cardinality=1000, tuple_size=50)
        scaled = d.scaled_to_bytes(1 * MB)
        assert scaled.size_bytes == pytest.approx(1 * MB)
        assert scaled.tuple_size == 50
        assert scaled.name == "d"

    def test_scaled_to_cardinality(self):
        d = DatasetProfile("d", cardinality=1000, tuple_size=50)
        assert d.scaled_to_cardinality(7).cardinality == 7

    def test_original_unchanged_by_scaling(self):
        d = DatasetProfile("d", cardinality=1000, tuple_size=50)
        d.scaled_to_bytes(1 * GB)
        assert d.cardinality == 1000

    def test_negative_cardinality_rejected(self):
        with pytest.raises(PlanError):
            DatasetProfile("d", cardinality=-1, tuple_size=50)

    def test_nonpositive_tuple_size_rejected(self):
        with pytest.raises(PlanError):
            DatasetProfile("d", cardinality=1, tuple_size=0)


class TestPaperDatasets:
    def test_all_table2_datasets_present(self):
        assert set(PAPER_DATASETS) == {
            "wikipedia",
            "tpch",
            "uscensus1990",
            "higgs",
            "dbpedia",
        }

    def test_base_sizes_match_table2_minimums(self):
        assert PAPER_DATASETS["wikipedia"].size_bytes == pytest.approx(30 * MB)
        assert PAPER_DATASETS["tpch"].size_bytes == pytest.approx(1 * GB)
        assert PAPER_DATASETS["higgs"].size_bytes == pytest.approx(740 * MB)

    def test_paper_dataset_scaling(self):
        d = paper_dataset("wikipedia", 1 * GB)
        assert d.size_bytes == pytest.approx(1 * GB)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(PlanError):
            paper_dataset("imagenet")
