"""The fault-injection harness and the service's behaviour under it.

Chaos is only useful if it is *deterministic*: every injected fault is a
pure function of ``(profile seed, decision token)``, so a failing chaos
run replays exactly. This suite checks the injector's determinism, each
wrapper's fault taxonomy, and the end-to-end contracts the harness
exists to demonstrate:

* a 100% model outage costs plan *fidelity*, never batch availability
  (zero failed jobs — the fallback chain absorbs every prediction);
* transient faults are retried with backoff and succeed;
* poisoned plans that keep killing workers are quarantined while
  innocent bystanders of the broken pool are exonerated and complete;
* a hanging optimizer *construction* is bounded by the per-job timeout;
* corrupt caches and malformed job rows degrade per-row, not per-batch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.resilience import (
    ChaosProfile,
    ChaoticModel,
    ChaoticOptimizer,
    FaultInjector,
    PROFILES,
    RetryPolicy,
    corrupt_cache_file,
)
from repro.resilience.chaos import InjectedFault
from repro.rheem.platforms import synthetic_registry
from repro.serve import BatchJob, BatchOptimizationService, resilient_robopt_factory
from repro.serve.testing import (
    crashing_robopt_factory,
    slow_init_robopt_factory,
    transient_robopt_factory,
)

from conftest import build_join_plan, build_pipeline

N_PLATFORMS = 2


def _named(plan, name):
    plan.name = name
    return plan


@pytest.fixture
def registry():
    return synthetic_registry(N_PLATFORMS)


# ---------------------------------------------------------------------------
# Profiles and the injector
# ---------------------------------------------------------------------------


class TestChaosProfile:
    def test_presets_parse(self):
        for name in PROFILES:
            assert ChaosProfile.parse(name) == PROFILES[name]

    def test_preset_with_overrides(self):
        profile = ChaosProfile.parse("model-outage,seed=7,latency_ms=5")
        assert profile.model_failure_rate == 1.0
        assert profile.seed == 7
        assert profile.latency_ms == 5.0

    def test_bare_spec(self):
        profile = ChaosProfile.parse("model_failure_rate=0.5,seed=3")
        assert profile.model_failure_rate == 0.5
        assert profile.seed == 3

    def test_unknown_preset_and_field_rejected(self):
        with pytest.raises(ReproError):
            ChaosProfile.parse("tornado")
        with pytest.raises(ReproError):
            ChaosProfile.parse("gremlin_rate=1.0")

    def test_rate_validation(self):
        with pytest.raises(ReproError):
            ChaosProfile(model_failure_rate=1.5)
        with pytest.raises(ReproError):
            ChaosProfile(latency_ms=-1.0)

    def test_inert(self):
        assert ChaosProfile().inert
        assert not PROFILES["model-outage"].inert
        assert not PROFILES["slow-model"].inert


class TestFaultInjector:
    def test_deterministic_across_instances(self):
        a = FaultInjector(ChaosProfile(seed=5, model_failure_rate=0.4))
        b = FaultInjector(ChaosProfile(seed=5, model_failure_rate=0.4))
        tokens = [f"tok{i}" for i in range(64)]
        assert [a.model_fails(t) for t in tokens] == [b.model_fails(t) for t in tokens]

    def test_seed_changes_decisions(self):
        tokens = [f"tok{i}" for i in range(128)]
        a = FaultInjector(ChaosProfile(seed=0, model_failure_rate=0.5))
        b = FaultInjector(ChaosProfile(seed=1, model_failure_rate=0.5))
        assert [a.model_fails(t) for t in tokens] != [b.model_fails(t) for t in tokens]

    def test_rate_extremes(self):
        injector = FaultInjector(ChaosProfile(worker_death_rate=1.0))
        assert injector.worker_dies("anything")
        assert not injector.model_fails("anything")  # rate 0

    def test_partial_rate_fires_partially(self):
        injector = FaultInjector(ChaosProfile(seed=2, model_failure_rate=0.3))
        fired = sum(injector.model_fails(f"t{i}") for i in range(200))
        assert 20 < fired < 120  # ~60 expected; just not all-or-nothing

    def test_latency(self):
        quiet = FaultInjector(ChaosProfile())
        assert quiet.latency_s("x") == 0.0
        slow = FaultInjector(ChaosProfile(latency_ms=20.0))
        assert slow.latency_s("x") == pytest.approx(0.02)


# ---------------------------------------------------------------------------
# The wrappers
# ---------------------------------------------------------------------------


class _ConstantModel:
    def predict(self, X):
        return np.ones(np.asarray(X).shape[0])


class TestChaoticModel:
    def test_outage_raises_injected_fault(self):
        model = ChaoticModel(
            _ConstantModel(), FaultInjector(PROFILES["model-outage"])
        )
        with pytest.raises(InjectedFault):
            model.predict(np.ones((2, 3)))

    def test_nan_storm_poisons_output(self):
        model = ChaoticModel(_ConstantModel(), FaultInjector(PROFILES["nan-storm"]))
        out = model.predict(np.ones((3, 3)))
        assert np.all(np.isnan(out))

    def test_flaky_sequence_is_reproducible(self):
        def sequence():
            model = ChaoticModel(
                _ConstantModel(),
                FaultInjector(ChaosProfile(seed=9, model_failure_rate=0.4)),
            )
            outcomes = []
            for _ in range(32):
                try:
                    model.predict(np.ones((1, 3)))
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fail")
            return outcomes

        first = sequence()
        assert first == sequence()
        assert "ok" in first and "fail" in first


class TestChaoticOptimizer:
    def test_serial_worker_death_is_a_raised_fault(self, registry):
        """In the main process an injected worker death must not actually
        exit — it surfaces as a job failure the service can retry."""
        from repro.core.features import FeatureSchema
        from repro.core.optimizer import Robopt
        from repro.serve.testing import LinearRuntimeModel

        schema = FeatureSchema(registry)
        inner = Robopt(
            registry, LinearRuntimeModel(schema.n_features), schema=schema
        )
        chaotic = ChaoticOptimizer(
            inner, FaultInjector(ChaosProfile(worker_death_rate=1.0))
        )
        with pytest.raises(InjectedFault, match="worker death"):
            chaotic.optimize(build_pipeline(2))

    def test_no_faults_passes_through(self, registry):
        from repro.core.features import FeatureSchema
        from repro.core.optimizer import Robopt
        from repro.serve.testing import LinearRuntimeModel

        schema = FeatureSchema(registry)
        inner = Robopt(
            registry, LinearRuntimeModel(schema.n_features), schema=schema
        )
        chaotic = ChaoticOptimizer(inner, FaultInjector(ChaosProfile()))
        plan = build_pipeline(2)
        assert (
            chaotic.optimize(plan).execution_plan.assignment
            == inner.optimize(plan).execution_plan.assignment
        )


class TestCorruptCacheFile:
    def test_truncates_at_rate_one(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 1, "entries": []}))
        before = len(path.read_bytes())
        assert corrupt_cache_file(
            path, FaultInjector(PROFILES["cache-corruption"])
        )
        assert len(path.read_bytes()) < before

    def test_noop_at_rate_zero_or_missing_file(self, tmp_path):
        path = tmp_path / "cache.json"
        assert not corrupt_cache_file(path, FaultInjector(ChaosProfile()))
        path.write_text("{}")
        assert not corrupt_cache_file(path, FaultInjector(ChaosProfile()))
        assert path.read_text() == "{}"


# ---------------------------------------------------------------------------
# The service under chaos
# ---------------------------------------------------------------------------


def _jobs(n=6):
    jobs = [BatchJob(f"p{i}", build_pipeline(2 + i % 3)) for i in range(n - 1)]
    jobs.append(BatchJob("join", build_join_plan()))
    return jobs


class TestServiceUnderChaos:
    def test_model_outage_zero_batch_failures(self, registry):
        """The ISSUE acceptance bar: an always-failing ML model costs plan
        fidelity, never availability."""
        factory = resilient_robopt_factory(
            platforms=N_PLATFORMS, chaos=PROFILES["model-outage"]
        )
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(_jobs())
        assert report.n_failed == 0
        for outcome in report.outcomes:
            assert outcome.ok, outcome.error
            assert outcome.result.execution_plan is not None

    def test_nan_storm_zero_batch_failures(self, registry):
        factory = resilient_robopt_factory(
            platforms=N_PLATFORMS, chaos=PROFILES["nan-storm"]
        )
        service = BatchOptimizationService(factory, registry, workers=0)
        assert service.optimize_batch(_jobs()).n_failed == 0

    def test_deadline_degrades_every_job_completely(self, registry):
        factory = resilient_robopt_factory(platforms=N_PLATFORMS, deadline_s=0.0)
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(_jobs())
        assert report.n_failed == 0
        assert report.n_degraded == report.n_jobs
        for outcome in report.outcomes:
            plan_ops = set(outcome.result.execution_plan.plan.operators)
            assert set(outcome.result.execution_plan.assignment) == plan_ops

    def test_serial_worker_deaths_fail_jobs_not_the_service(self, registry):
        """With worker_death_rate=1.0 in serial mode every job fails (as a
        raised InjectedFault) but the batch — and the process — survive."""
        factory = resilient_robopt_factory(
            platforms=N_PLATFORMS, chaos=ChaosProfile(worker_death_rate=1.0)
        )
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(_jobs(4))
        assert report.n_failed == report.n_jobs
        assert all("worker death" in o.error for o in report.outcomes)

    def test_transient_failures_recover_via_retry(self, registry, tmp_path):
        factory = transient_robopt_factory(
            platforms=N_PLATFORMS, state_dir=str(tmp_path), fail_times=1
        )
        service = BatchOptimizationService(
            factory,
            registry,
            workers=0,
            retry=RetryPolicy(max_retries=2, base_backoff_s=0.0, jitter=0.0),
        )
        jobs = [
            BatchJob("stable", build_pipeline(2)),
            BatchJob("shaky", _named(build_pipeline(3), "transient-blip")),
        ]
        report = service.optimize_batch(jobs)
        by_id = {o.job_id: o for o in report.outcomes}
        assert by_id["stable"].ok and by_id["stable"].attempts == 1
        assert by_id["shaky"].ok and by_id["shaky"].attempts == 2
        assert report.n_retried == 1

    def test_no_retries_without_policy(self, registry, tmp_path):
        factory = transient_robopt_factory(
            platforms=N_PLATFORMS, state_dir=str(tmp_path), fail_times=1
        )
        service = BatchOptimizationService(factory, registry, workers=0)
        report = service.optimize_batch(
            [BatchJob("shaky", _named(build_pipeline(3), "transient-blip"))]
        )
        assert report.n_failed == 1
        assert report.outcomes[0].attempts == 1

    def test_poisoned_plan_quarantined_innocents_exonerated(self, registry):
        """A plan that kills its worker on every dispatch crosses the
        quarantine threshold; jobs that merely shared its broken pool get
        isolated retries and complete."""
        factory = crashing_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(
            factory,
            registry,
            workers=2,
            retry=RetryPolicy(max_retries=3, base_backoff_s=0.0, jitter=0.0),
            quarantine_after=2,
        )
        jobs = [
            BatchJob("ok1", build_pipeline(2)),
            BatchJob("bad", _named(build_pipeline(3), "crash-me")),
            BatchJob("ok2", build_pipeline(4)),
        ]
        report = service.optimize_batch(jobs)
        by_id = {o.job_id: o for o in report.outcomes}
        assert not by_id["bad"].ok
        assert by_id["bad"].quarantined
        assert by_id["ok1"].ok and by_id["ok2"].ok
        assert report.n_quarantined == 1
        # The quarantine persists into the next batch: the poisoned plan is
        # refused up front instead of being handed another worker.
        again = service.optimize_batch(
            [BatchJob("bad2", _named(build_pipeline(3), "crash-me"))]
        )
        assert again.outcomes[0].quarantined
        assert "quarantined" in again.outcomes[0].error

    def test_timeout_covers_optimizer_construction(self, registry):
        """A factory that hangs during *construction* (worker init) must be
        bounded by the per-job timeout, not stall the batch for its full
        init sleep."""
        import time

        factory = slow_init_robopt_factory(platforms=N_PLATFORMS, init_sleep_s=6.0)
        service = BatchOptimizationService(
            factory, registry, workers=2, timeout_s=1.0
        )
        t0 = time.perf_counter()
        report = service.optimize_batch([BatchJob("j", build_pipeline(2))])
        elapsed = time.perf_counter() - t0
        assert report.n_failed == 1
        assert report.outcomes[0].timed_out
        assert elapsed < 5.0  # nowhere near the 6s init sleep


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestChaosCli:
    def _write_jobs(self, tmp_path, n=3):
        path = tmp_path / "jobs.jsonl"
        rows = [
            {"id": f"wc{i}", "workload": "WordCount", "size": f"{20 * (i + 1)}MB"}
            for i in range(n)
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        return path

    def test_chaos_model_outage_serves_every_job(self, tmp_path, capsys):
        from repro.cli import main

        jobs = self._write_jobs(tmp_path)
        out = tmp_path / "results.jsonl"
        rc = main(
            [
                "optimize-batch",
                "--jobs", str(jobs),
                "--model", str(tmp_path / "missing.pkl"),
                "--chaos-profile", "model-outage",
                "--out", str(out),
            ]
        )
        assert rc == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 3 and all(r["ok"] for r in rows)

    def test_chaos_requires_resilience(self, tmp_path, capsys):
        from repro.cli import main

        jobs = self._write_jobs(tmp_path)
        rc = main(
            [
                "optimize-batch",
                "--jobs", str(jobs),
                "--model", str(tmp_path / "missing.pkl"),
                "--chaos-profile", "model-outage",
                "--no-resilience",
            ]
        )
        assert rc != 0
        assert "resilience" in capsys.readouterr().err

    def test_env_seed_overrides_profile(self, monkeypatch):
        import argparse

        from repro.cli import _chaos_profile

        args = argparse.Namespace(chaos_profile="model-flaky,seed=1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        assert _chaos_profile(args).seed == 42
        monkeypatch.setenv("REPRO_CHAOS_SEED", "not-a-seed")
        with pytest.raises(ReproError):
            _chaos_profile(args)
        monkeypatch.delenv("REPRO_CHAOS_SEED")
        assert _chaos_profile(args).seed == 1

    def test_deadline_flag_marks_degraded_rows(self, tmp_path, capsys):
        from repro.cli import main

        jobs = self._write_jobs(tmp_path, n=2)
        out = tmp_path / "results.jsonl"
        rc = main(
            [
                "optimize-batch",
                "--jobs", str(jobs),
                "--model", str(tmp_path / "missing.pkl"),
                "--deadline-ms", "0",
                "--out", str(out),
            ]
        )
        assert rc == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert all(r["ok"] for r in rows)
        assert all(r["degraded"] for r in rows)


# ---------------------------------------------------------------------------
# The daemon front door (ISSUE 7): chaos contracts hold over the wire
# ---------------------------------------------------------------------------


class TestDaemonUnderChaosProfiles:
    """The network layer adds no new failure modes: chaos behind the
    daemon degrades exactly as it does behind the batch CLI."""

    def test_nan_storm_daemon_answers_every_client(self, registry, tmp_path):
        from test_serve_daemon import _plan_request, run_daemon
        from repro.serve import ServeClient

        factory = resilient_robopt_factory(
            platforms=N_PLATFORMS, chaos=PROFILES["nan-storm"]
        )
        service = BatchOptimizationService(factory, registry, workers=0)
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                responses = client.optimize_many(
                    [_plan_request(build_pipeline(2 + i % 3), f"n{i}") for i in range(4)]
                )
        assert all(r.ok for r in responses)

    def test_poisoned_plan_is_quarantined_over_the_wire(self, registry, tmp_path):
        """A plan that keeps killing pool workers crosses the quarantine
        threshold; the client sees a structured ``quarantined`` error and
        other plans keep completing on the recycled pool."""
        from test_serve_daemon import _plan_request, run_daemon
        from repro.serve import ServeClient

        factory = crashing_robopt_factory(platforms=N_PLATFORMS)
        service = BatchOptimizationService(
            factory,
            registry,
            workers=2,
            retry=RetryPolicy(max_retries=3, base_backoff_s=0.0, jitter=0.0),
            quarantine_after=2,
        )
        with run_daemon(service, unix_path=str(tmp_path / "d.sock")) as harness:
            with ServeClient(harness.address) as client:
                bad = client.optimize(
                    _plan_request(_named(build_pipeline(3), "crash-me"), "bad")
                )
                assert not bad.ok
                assert bad.code == "quarantined"
                # the quarantine persists: refused up front next time
                again = client.optimize(
                    _plan_request(_named(build_pipeline(3), "crash-me"), "bad2")
                )
                assert not again.ok
                assert again.code == "quarantined"
                assert "quarantined" in again.error
                # an innocent plan still gets a real answer
                ok = client.optimize(_plan_request(build_pipeline(2), "ok"))
                assert ok.ok, ok


# ---------------------------------------------------------------------------
# The template cache tier under chaos
# ---------------------------------------------------------------------------


class TestTemplateCacheChaos:
    """The template tier's failure mode is wasted work, never a wrong plan.

    A corrupt persistence file loads as an empty cache (never raises); a
    selector that returns NaN or raises trips the fallback to full
    enumeration; a confident-but-expensive pick dies on the guardrail —
    in every case the answer the client sees is the enumerated optimum.
    """

    def _optimizer(self, registry):
        from repro.core.features import FeatureSchema
        from repro.core.optimizer import Robopt
        from repro.serve.testing import LinearRuntimeModel

        schema = FeatureSchema(registry)
        return Robopt(
            registry, LinearRuntimeModel(schema.n_features, seed=5), schema=schema
        )

    def _seed_two_candidates(self, cache, tfp, plan, optimizer, registry):
        """Forge a 2-candidate template (all-platform-0 / all-platform-1)."""
        base = optimizer.optimize(plan)
        for name in registry.names:
            forged = base.copy()
            for op_id in forged.execution_plan.assignment:
                forged.execution_plan.assignment[op_id] = name
            cache.observe(tfp, plan, forged)
        assert len(cache.candidates(tfp)) == 2

    def test_corrupt_template_cache_loads_empty_never_raises(self, tmp_path):
        from repro.obs import Tracer, use_tracer
        from repro.serve import TemplateCache

        registry = synthetic_registry(N_PLATFORMS)
        optimizer = self._optimizer(registry)
        plan = build_pipeline(3)
        cache = TemplateCache()
        cache.observe("tfp", plan, optimizer.optimize(plan))
        path = cache.save(tmp_path / "templates.json")

        # The classic crash-during-write artifact: a truncated document.
        assert corrupt_cache_file(path, FaultInjector(PROFILES["cache-corruption"]))
        tracer = Tracer()
        with use_tracer(tracer):
            loaded = TemplateCache.load(path, registry)
        assert len(loaded) == 0
        assert tracer.counters["serve.template.load_corrupt"] == 1

        # Outright garbage behaves the same.
        path.write_text("\x00\x01 not json at all")
        assert len(TemplateCache.load(path, registry)) == 0

    def test_nan_selector_falls_back_to_enumeration(self, registry):
        from repro.obs import Tracer, use_tracer
        from repro.serve import BatchOptimizationService, TemplateCache
        from repro.serve import template_fingerprint
        from repro.serve.testing import linear_robopt_factory

        class NaNSelector:
            """Every tree answers NaN — a silently broken model."""

            def fit(self, X, y):
                return self

            class _Tree:
                def predict(self, X):
                    return np.full(X.shape[0], np.nan)

            trees_ = [_Tree(), _Tree(), _Tree()]

        optimizer = self._optimizer(registry)
        cache = TemplateCache(min_observations=2, selector_factory=NaNSelector)
        plan = build_pipeline(3)
        tfp = template_fingerprint(plan, registry)
        self._seed_two_candidates(cache, tfp, plan, optimizer, registry)

        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=5),
            registry,
            workers=0,
            template_cache=cache,
        )
        probe = BatchJob("probe", build_pipeline(3, cardinality=7.7e5))
        tracer = Tracer()
        with use_tracer(tracer):
            report = service.optimize_batch([probe])
        (outcome,) = report.outcomes
        assert outcome.ok and not outcome.template_hit
        assert tracer.counters["serve.template.selector_errors"] >= 1
        # Never a wrong plan: the answer is the enumerated optimum.
        fresh = optimizer.optimize(probe.plan)
        assert outcome.result.predicted_runtime == fresh.predicted_runtime
        assert (
            outcome.result.execution_plan.assignment
            == fresh.execution_plan.assignment
        )

    def test_raising_selector_falls_back_to_enumeration(self, registry):
        from repro.serve import BatchOptimizationService, TemplateCache
        from repro.serve import template_fingerprint
        from repro.serve.testing import linear_robopt_factory

        class ExplodingSelector:
            def fit(self, X, y):
                raise RuntimeError("selector training outage")

        optimizer = self._optimizer(registry)
        cache = TemplateCache(min_observations=2, selector_factory=ExplodingSelector)
        plan = build_pipeline(3)
        tfp = template_fingerprint(plan, registry)
        self._seed_two_candidates(cache, tfp, plan, optimizer, registry)

        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=5),
            registry,
            workers=0,
            template_cache=cache,
        )
        probe = BatchJob("probe", build_pipeline(3, cardinality=2.2e6))
        report = service.optimize_batch([probe])
        (outcome,) = report.outcomes
        assert outcome.ok and not outcome.template_hit
        assert cache.stats.selector_errors >= 1
        fresh = optimizer.optimize(probe.plan)
        assert outcome.result.predicted_runtime == fresh.predicted_runtime

    def test_guardrail_reject_is_counted_and_falls_back(self, registry):
        from repro.obs import Tracer, use_tracer
        from repro.rheem.execution_plan import ExecutionPlan
        from repro.serve import BatchOptimizationService, TemplateCache
        from repro.serve import template_fingerprint
        from repro.serve.testing import linear_robopt_factory

        optimizer = self._optimizer(registry)
        plan = build_pipeline(3)
        tfp = template_fingerprint(plan, registry)

        # Find the *worse* of the two forged single-platform candidates
        # under the live model, so the selector can confidently pick it.
        def cost_of(name):
            assignment = {op_id: name for op_id in plan.operators}
            xplan = ExecutionPlan(plan, assignment, registry)
            feats = optimizer.schema.encode_execution_plan(xplan)
            return float(optimizer.model.predict(feats[None, :])[0])

        names = list(registry.names)
        worse_index = int(np.argmax([cost_of(n) for n in names]))

        class WorstPickSelector:
            """Confident (zero variance) and maximally unhelpful."""

            def fit(self, X, y):
                return self

            class _Tree:
                def predict(self, X):
                    return np.full(X.shape[0], float(worse_index))

            trees_ = [_Tree(), _Tree(), _Tree()]

        cache = TemplateCache(
            guardrail=1.0,  # only the argmin may be served
            min_observations=2,
            selector_factory=WorstPickSelector,
        )
        self._seed_two_candidates(cache, tfp, plan, optimizer, registry)

        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=5),
            registry,
            workers=0,
            template_cache=cache,
        )
        probe = BatchJob("probe", build_pipeline(3, cardinality=4.4e6))
        tracer = Tracer()
        with use_tracer(tracer):
            report = service.optimize_batch([probe])
        (outcome,) = report.outcomes
        assert outcome.ok and not outcome.template_hit
        assert tracer.counters["serve.template.guardrail_rejects"] == 1
        assert cache.stats.guardrail_rejects == 1
        fresh = optimizer.optimize(probe.plan)
        assert outcome.result.predicted_runtime == fresh.predicted_runtime
        assert (
            outcome.result.execution_plan.assignment
            == fresh.execution_plan.assignment
        )
